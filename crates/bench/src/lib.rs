//! # gss-bench
//!
//! Shared harness for regenerating every table and figure of the paper's
//! evaluation (Section 6). Each `bin/` target reproduces one plot: it
//! prints the same series the paper shows and writes a CSV to
//! `target/experiments/`.
//!
//! Absolute numbers differ from the paper (different hardware, Rust vs.
//! JVM); the *shapes* — which technique wins, by roughly what factor,
//! where crossovers happen — are the reproduction target (EXPERIMENTS.md).

use std::io::Write;
use std::time::Instant;

use gss_baselines::{AggregateTree, BucketMode, Buckets, Cutty, Pairs, TupleBuffer};
use gss_core::operator::{OperatorConfig, WindowOperator};
use gss_core::{
    AggregateFunction, StorePolicy, StreamElement, StreamOrder, Time, WindowAggregator,
    WindowFunction,
};
use gss_windows::{CountSlidingWindow, CountTumblingWindow, SessionWindow, TumblingWindow};

/// The aggregation techniques compared throughout Section 6.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Technique {
    LazySlicing,
    EagerSlicing,
    Pairs,
    Cutty,
    /// Aggregate buckets (Table 1 row 3) — Flink's default operator.
    Buckets,
    /// Tuple buckets (Table 1 row 4).
    TupleBuckets,
    TupleBuffer,
    AggregateTree,
}

impl Technique {
    pub fn name(self) -> &'static str {
        match self {
            Technique::LazySlicing => "Lazy Slicing",
            Technique::EagerSlicing => "Eager Slicing",
            Technique::Pairs => "Pairs",
            Technique::Cutty => "Cutty",
            Technique::Buckets => "Buckets",
            Technique::TupleBuckets => "Tuple Buckets",
            Technique::TupleBuffer => "Tuple Buffer",
            Technique::AggregateTree => "Aggregate Tree",
        }
    }

    /// Techniques that support out-of-order streams (Pairs and Cutty are
    /// in-order only — paper Section 3.4).
    pub fn supports_out_of_order(self) -> bool {
        !matches!(self, Technique::Pairs | Technique::Cutty)
    }
}

/// A window query used by the benchmark workloads.
#[derive(Debug, Clone, Copy)]
pub enum QuerySpec {
    Tumbling(i64),
    Sliding(i64, i64),
    Session(i64),
    CountTumbling(u64),
    CountSliding(u64, u64),
}

impl QuerySpec {
    pub fn build(self) -> Box<dyn WindowFunction> {
        match self {
            QuerySpec::Tumbling(l) => Box::new(TumblingWindow::new(l)),
            QuerySpec::Sliding(l, s) => Box::new(gss_windows::SlidingWindow::new(l, s)),
            QuerySpec::Session(g) => Box::new(SessionWindow::new(g).with_retention(g * 64)),
            QuerySpec::CountTumbling(l) => Box::new(CountTumblingWindow::new(l)),
            QuerySpec::CountSliding(l, s) => Box::new(CountSlidingWindow::new(l, s)),
        }
    }
}

/// The paper's standard multi-query workload: `n` concurrent tumbling
/// windows with lengths equally distributed from 1 to 20 seconds
/// (Section 6.2.1) — n queries cycling through the 20 lengths.
pub fn concurrent_tumbling_queries(n: usize) -> Vec<QuerySpec> {
    (0..n).map(|i| QuerySpec::Tumbling(((i % 20) as i64 + 1) * 1_000)).collect()
}

/// Builds an aggregator of the given technique over the given queries.
/// Panics if the technique cannot express the workload (callers pick
/// applicable techniques per experiment, like the paper does).
pub fn build<A: AggregateFunction>(
    tech: Technique,
    f: A,
    queries: &[QuerySpec],
    order: StreamOrder,
    lateness: Time,
) -> Box<dyn WindowAggregator<A>> {
    match tech {
        Technique::LazySlicing | Technique::EagerSlicing => {
            let policy =
                if tech == Technique::LazySlicing { StorePolicy::Lazy } else { StorePolicy::Eager };
            let cfg =
                OperatorConfig { order, policy, allowed_lateness: lateness, ..Default::default() };
            let mut op = WindowOperator::new(f, cfg);
            for q in queries {
                op.add_query(q.build()).expect("query mix supported");
            }
            Box::new(op)
        }
        Technique::Pairs => {
            let mut p = Pairs::new(f);
            for q in queries {
                match q {
                    QuerySpec::Tumbling(l) => {
                        p.add_query(*l, *l);
                    }
                    QuerySpec::Sliding(l, s) => {
                        p.add_query(*l, *s);
                    }
                    other => panic!("Pairs cannot express {other:?}"),
                }
            }
            Box::new(p)
        }
        Technique::Cutty => {
            let mut c = Cutty::new(f);
            for q in queries {
                c.add_query(q.build());
            }
            Box::new(c)
        }
        Technique::Buckets | Technique::TupleBuckets => {
            let mode =
                if tech == Technique::Buckets { BucketMode::Aggregate } else { BucketMode::Tuple };
            let mut b = Buckets::new(f, mode, order, lateness);
            for q in queries {
                b.add_query(q.build());
            }
            Box::new(b)
        }
        Technique::TupleBuffer => {
            let mut t = TupleBuffer::new(f, order, lateness);
            for q in queries {
                t.add_query(q.build());
            }
            Box::new(t)
        }
        Technique::AggregateTree => {
            let mut t = AggregateTree::new(f, order, lateness);
            for q in queries {
                t.add_query(q.build());
            }
            Box::new(t)
        }
    }
}

/// Builds the general slicing operator with explicit control over the
/// out-of-order batching ablation switch. `disable_ooo_batching: true`
/// reproduces the PR 1 behavior (every late tuple handled individually)
/// so BENCH_ooo can measure the late-run grouping path against it.
pub fn build_slicing<A: AggregateFunction>(
    f: A,
    policy: StorePolicy,
    queries: &[QuerySpec],
    order: StreamOrder,
    lateness: Time,
    disable_ooo_batching: bool,
) -> Box<dyn WindowAggregator<A>> {
    let cfg = OperatorConfig {
        order,
        policy,
        allowed_lateness: lateness,
        disable_ooo_batching,
        ..Default::default()
    };
    let mut op = WindowOperator::new(f, cfg);
    for q in queries {
        op.add_query(q.build()).expect("query mix supported");
    }
    Box::new(op)
}

/// Result of driving one aggregator over a prepared element stream.
pub struct RunReport {
    pub tuples: u64,
    pub results: u64,
    pub seconds: f64,
    pub memory_bytes: usize,
}

impl RunReport {
    pub fn throughput(&self) -> f64 {
        self.tuples as f64 / self.seconds.max(1e-9)
    }
}

/// Best-of-`reps` wall-clock run (the first run warms the allocator and
/// caches; individual cells finish in milliseconds, so a single timing is
/// noise-dominated). Result counts are asserted identical across reps.
pub fn run_best<A: AggregateFunction>(
    reps: usize,
    build: impl Fn() -> Box<dyn WindowAggregator<A>>,
    drive: impl Fn(&mut dyn WindowAggregator<A>) -> RunReport,
) -> RunReport {
    let mut best: Option<RunReport> = None;
    for _ in 0..reps {
        let mut agg = build();
        let r = drive(agg.as_mut());
        if let Some(b) = &best {
            assert_eq!(r.results, b.results, "result count diverged across repetitions");
        }
        if best.as_ref().is_none_or(|b| r.seconds < b.seconds) {
            best = Some(r);
        }
    }
    best.expect("at least one repetition")
}

/// Best-of-`reps` for a *family* of configurations, with the repetitions
/// interleaved round-robin across configurations: rep 0 of every config
/// runs before rep 1 of any. On a shared host, slow drift (CPU
/// frequency, noisy neighbors) then hits every configuration equally
/// instead of biasing whichever one ran in the fast window — the
/// config-to-config speedup ratios are the figure, so they get the
/// protection. Returns one best report per config, in `configs` order.
pub fn run_best_interleaved<C>(
    reps: usize,
    configs: &[C],
    mut drive: impl FnMut(&C) -> RunReport,
) -> Vec<RunReport> {
    let mut best: Vec<Option<RunReport>> = configs.iter().map(|_| None).collect();
    for _ in 0..reps {
        for (slot, c) in best.iter_mut().zip(configs) {
            let r = drive(c);
            if let Some(b) = slot.as_ref() {
                assert_eq!(r.results, b.results, "result count diverged across repetitions");
            }
            if slot.as_ref().is_none_or(|b| r.seconds < b.seconds) {
                *slot = Some(r);
            }
        }
    }
    best.into_iter().map(|r| r.expect("at least one repetition")).collect()
}

/// Drives the aggregator through the whole element stream, measuring wall
/// time and counting emitted windows.
pub fn run<A: AggregateFunction>(
    agg: &mut dyn WindowAggregator<A>,
    elements: &[StreamElement<A::Input>],
) -> RunReport {
    let mut out = Vec::new();
    let mut tuples = 0u64;
    let mut results = 0u64;
    let start = Instant::now();
    for e in elements {
        match e {
            StreamElement::Record { ts, value } => {
                tuples += 1;
                agg.process(*ts, value.clone(), &mut out);
            }
            StreamElement::Watermark(wm) => agg.on_watermark(*wm, &mut out),
            StreamElement::Punctuation(_) => {}
        }
        results += out.len() as u64;
        out.clear();
    }
    let seconds = start.elapsed().as_secs_f64();
    RunReport { tuples, results, seconds, memory_bytes: agg.memory_bytes() }
}

/// Drives the aggregator through the element stream in chunks of
/// `batch_size` records via [`WindowAggregator::process_batch`] — the
/// batched ingestion fast path. Watermarks flush the pending chunk first,
/// so results are identical to [`run`]; only the per-record overhead
/// changes. `batch_size == 1` falls back to the per-tuple path outright:
/// buffering and run detection are pure overhead on single-record
/// chunks, so the degenerate load runs at per-tuple speed instead of the
/// old ~0.6–0.8× cliff (pinned in EXPERIMENTS.md).
pub fn run_batched<A: AggregateFunction>(
    agg: &mut dyn WindowAggregator<A>,
    elements: &[StreamElement<A::Input>],
    batch_size: usize,
) -> RunReport {
    if batch_size <= 1 {
        return run(agg, elements);
    }
    let batch_size = batch_size.max(1);
    let mut out = Vec::new();
    let mut buf: Vec<(Time, A::Input)> = Vec::with_capacity(batch_size);
    let mut tuples = 0u64;
    let mut results = 0u64;
    let start = Instant::now();
    let flush = |buf: &mut Vec<(Time, A::Input)>,
                 agg: &mut dyn WindowAggregator<A>,
                 out: &mut Vec<_>,
                 tuples: &mut u64| {
        if !buf.is_empty() {
            *tuples += buf.len() as u64;
            agg.process_batch(buf, out);
            buf.clear();
        }
    };
    for e in elements {
        match e {
            StreamElement::Record { ts, value } => {
                buf.push((*ts, value.clone()));
                if buf.len() >= batch_size {
                    flush(&mut buf, agg, &mut out, &mut tuples);
                }
            }
            StreamElement::Watermark(wm) => {
                flush(&mut buf, agg, &mut out, &mut tuples);
                agg.on_watermark(*wm, &mut out);
            }
            StreamElement::Punctuation(_) => {}
        }
        results += out.len() as u64;
        out.clear();
    }
    flush(&mut buf, agg, &mut out, &mut tuples);
    results += out.len() as u64;
    let seconds = start.elapsed().as_secs_f64();
    RunReport { tuples, results, seconds, memory_bytes: agg.memory_bytes() }
}

/// Drives the aggregator through the element stream in struct-of-arrays
/// chunks of `batch_size` records via
/// [`WindowAggregator::process_batch_columns`] — the columnar ingestion
/// path the pipeline uses. Results are identical to [`run`] and
/// [`run_batched`]; the values column reaches the operator contiguous,
/// so bulk-fold kernels run with zero gather.
pub fn run_columnar<A: AggregateFunction>(
    agg: &mut dyn WindowAggregator<A>,
    elements: &[StreamElement<A::Input>],
    batch_size: usize,
) -> RunReport {
    if batch_size <= 1 {
        return run(agg, elements);
    }
    let mut out = Vec::new();
    let mut times: Vec<Time> = Vec::with_capacity(batch_size);
    let mut values: Vec<A::Input> = Vec::with_capacity(batch_size);
    let mut tuples = 0u64;
    let mut results = 0u64;
    let start = Instant::now();
    let flush = |times: &mut Vec<Time>,
                 values: &mut Vec<A::Input>,
                 agg: &mut dyn WindowAggregator<A>,
                 out: &mut Vec<_>,
                 tuples: &mut u64| {
        if !times.is_empty() {
            *tuples += times.len() as u64;
            agg.process_batch_columns(times, values, out);
            times.clear();
            values.clear();
        }
    };
    for e in elements {
        match e {
            StreamElement::Record { ts, value } => {
                times.push(*ts);
                values.push(value.clone());
                if times.len() >= batch_size {
                    flush(&mut times, &mut values, agg, &mut out, &mut tuples);
                }
            }
            StreamElement::Watermark(wm) => {
                flush(&mut times, &mut values, agg, &mut out, &mut tuples);
                agg.on_watermark(*wm, &mut out);
            }
            StreamElement::Punctuation(_) => {}
        }
        results += out.len() as u64;
        out.clear();
    }
    flush(&mut times, &mut values, agg, &mut out, &mut tuples);
    results += out.len() as u64;
    let seconds = start.elapsed().as_secs_f64();
    RunReport { tuples, results, seconds, memory_bytes: agg.memory_bytes() }
}

/// Caps a run so slow baselines finish: keeps at most `max_tuples` records
/// (plus interleaved watermarks) from the element stream.
pub fn truncate_elements<V: Clone>(
    elements: &[StreamElement<V>],
    max_tuples: usize,
) -> Vec<StreamElement<V>> {
    let mut out = Vec::new();
    let mut n = 0;
    for e in elements {
        if e.is_record() {
            n += 1;
            if n > max_tuples {
                break;
            }
        }
        out.push(e.clone());
    }
    out
}

/// Converts `(ts, value)` records into stream elements with no watermarks
/// (in-order runs).
pub fn as_elements(tuples: &[(Time, i64)]) -> Vec<StreamElement<i64>> {
    tuples.iter().map(|&(ts, value)| StreamElement::Record { ts, value }).collect()
}

/// A simple experiment CSV + console writer.
pub struct Output {
    rows: Vec<Vec<String>>,
    header: Vec<String>,
    path: std::path::PathBuf,
}

impl Output {
    /// Creates an output named e.g. `fig8`; the CSV lands in
    /// `target/experiments/fig8.csv`.
    pub fn new(name: &str, header: &[&str]) -> Self {
        let dir = std::path::Path::new("target/experiments");
        std::fs::create_dir_all(dir).expect("create experiment dir");
        Output {
            rows: Vec::new(),
            header: header.iter().map(|s| s.to_string()).collect(),
            path: dir.join(format!("{name}.csv")),
        }
    }

    pub fn print_header(&self) {
        println!("{}", self.header.join("\t"));
    }

    pub fn row(&mut self, cells: &[String]) {
        println!("{}", cells.join("\t"));
        self.rows.push(cells.to_vec());
    }

    pub fn finish(self) {
        let mut f = std::fs::File::create(&self.path).expect("create csv");
        writeln!(f, "{}", self.header.join(",")).unwrap();
        for r in &self.rows {
            writeln!(f, "{}", r.join(",")).unwrap();
        }
        eprintln!("wrote {}", self.path.display());
    }
}

/// Logical cores visible to this process. Every `BENCH_*.json` records
/// it so scaling claims can be read in context: on a 1-core container a
/// flat-to-declining parallel curve is the expected shape, not a bug.
pub fn machine_cores() -> usize {
    std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1)
}

/// First line of `rustc -V` (e.g. `rustc 1.95.0 (…)`), or `"unknown"`
/// when the compiler is not on PATH at run time.
pub fn rustc_version() -> String {
    std::process::Command::new("rustc")
        .arg("-V")
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Short git commit hash of the tree the bench ran in, suffixed with
/// `-dirty` when the working tree had uncommitted changes, or
/// `"unknown"` outside a git checkout.
pub fn git_commit() -> String {
    let git = |args: &[&str]| {
        std::process::Command::new("git")
            .args(args)
            .output()
            .ok()
            .filter(|o| o.status.success())
            .and_then(|o| String::from_utf8(o.stdout).ok())
    };
    let Some(hash) = git(&["rev-parse", "--short", "HEAD"]).map(|s| s.trim().to_string()) else {
        return "unknown".to_string();
    };
    if hash.is_empty() {
        return "unknown".to_string();
    }
    let dirty = git(&["status", "--porcelain"]).is_none_or(|s| !s.trim().is_empty());
    if dirty {
        format!("{hash}-dirty")
    } else {
        hash
    }
}

/// Incremental writer for the `BENCH_<name>.json` summaries at the repo
/// root (no serde in the tree; the schemas are flat, so hand-rolled JSON
/// is fine). Opens the object and writes the shared preamble —
/// `workload`, `cores`, and the provenance pair `rustc` + `commit` — so
/// no bin can forget to record the machine width and toolchain its
/// numbers came from; the bin streams its own sections through
/// [`BenchJson::file`] and closes the object with [`BenchJson::finish`].
pub struct BenchJson {
    f: std::fs::File,
    path: String,
}

impl BenchJson {
    /// Creates `BENCH_<name>.json` and writes `workload` + `cores` plus
    /// the `rustc` / `commit` provenance of the run.
    /// `workload` must not contain characters needing JSON escapes.
    pub fn create(name: &str, workload: &str) -> Self {
        let path = format!("BENCH_{name}.json");
        let mut f = std::fs::File::create(&path).unwrap_or_else(|e| panic!("create {path}: {e}"));
        writeln!(f, "{{").expect("write json");
        writeln!(f, "  \"workload\": \"{workload}\",").expect("write json");
        writeln!(f, "  \"cores\": {},", machine_cores()).expect("write json");
        writeln!(f, "  \"rustc\": \"{}\",", rustc_version()).expect("write json");
        writeln!(f, "  \"commit\": \"{}\",", git_commit()).expect("write json");
        BenchJson { f, path }
    }

    /// Records which store policies the run swept as a `"stores"` array,
    /// so a summary regenerated under a `--store` filter is
    /// distinguishable from the full three-store sweep.
    pub fn stores(&mut self, names: &[&str]) {
        let list = names.iter().map(|n| format!("\"{n}\"")).collect::<Vec<_>>().join(", ");
        writeln!(self.f, "  \"stores\": [{list}],").expect("write json");
    }

    /// The underlying file, for the bin-specific sections. Lines written
    /// here continue the top-level object, so the last section must not
    /// end with a comma.
    pub fn file(&mut self) -> &mut std::fs::File {
        &mut self.f
    }

    /// Closes the JSON object and reports the path.
    pub fn finish(mut self) {
        writeln!(self.f, "}}").expect("write json");
        eprintln!("wrote {}", self.path);
    }
}

/// Human-readable throughput.
pub fn fmt_tput(tps: f64) -> String {
    if tps >= 1e6 {
        format!("{:.2}M", tps / 1e6)
    } else if tps >= 1e3 {
        format!("{:.1}k", tps / 1e3)
    } else {
        format!("{tps:.0}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gss_aggregates::Sum;

    #[test]
    fn build_and_run_every_technique_in_order() {
        let tuples: Vec<(Time, i64)> = (0..5_000).map(|i| (i, 1)).collect();
        let elements = as_elements(&tuples);
        let queries = concurrent_tumbling_queries(5);
        for tech in [
            Technique::LazySlicing,
            Technique::EagerSlicing,
            Technique::Pairs,
            Technique::Cutty,
            Technique::Buckets,
            Technique::TupleBuckets,
            Technique::TupleBuffer,
            Technique::AggregateTree,
        ] {
            let mut agg = build(tech, Sum, &queries, StreamOrder::InOrder, 0);
            let report = run(agg.as_mut(), &elements);
            assert_eq!(report.tuples, 5_000, "{}", tech.name());
            assert!(report.results > 0, "{} produced no windows", tech.name());
        }
    }

    #[test]
    fn run_batched_matches_run_for_every_technique() {
        let tuples: Vec<(Time, i64)> = (0..5_000).map(|i| (i, i % 7)).collect();
        let elements = as_elements(&tuples);
        let queries = concurrent_tumbling_queries(5);
        for tech in [
            Technique::LazySlicing,
            Technique::EagerSlicing,
            Technique::Pairs,
            Technique::Cutty,
            Technique::Buckets,
            Technique::TupleBuckets,
            Technique::TupleBuffer,
            Technique::AggregateTree,
        ] {
            let mut base = build(tech, Sum, &queries, StreamOrder::InOrder, 0);
            let baseline = run(base.as_mut(), &elements);
            for batch_size in [1usize, 64, 512] {
                let mut agg = build(tech, Sum, &queries, StreamOrder::InOrder, 0);
                let report = run_batched(agg.as_mut(), &elements, batch_size);
                assert_eq!(report.tuples, baseline.tuples, "{} tuples", tech.name());
                assert_eq!(
                    report.results,
                    baseline.results,
                    "{} results @ batch {batch_size}",
                    tech.name()
                );
                let mut agg = build(tech, Sum, &queries, StreamOrder::InOrder, 0);
                let report = run_columnar(agg.as_mut(), &elements, batch_size);
                assert_eq!(report.tuples, baseline.tuples, "{} columnar tuples", tech.name());
                assert_eq!(
                    report.results,
                    baseline.results,
                    "{} columnar results @ batch {batch_size}",
                    tech.name()
                );
            }
        }
    }

    #[test]
    fn query_workload_shape() {
        let qs = concurrent_tumbling_queries(45);
        assert_eq!(qs.len(), 45);
        assert!(matches!(qs[0], QuerySpec::Tumbling(1000)));
        assert!(matches!(qs[19], QuerySpec::Tumbling(20_000)));
        assert!(matches!(qs[20], QuerySpec::Tumbling(1000)));
    }

    #[test]
    fn truncation_caps_records() {
        let tuples: Vec<(Time, i64)> = (0..100).map(|i| (i, 1)).collect();
        let elements = as_elements(&tuples);
        let t = truncate_elements(&elements, 10);
        assert_eq!(t.iter().filter(|e| e.is_record()).count(), 10);
    }
}
