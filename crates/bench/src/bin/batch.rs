//! Batched ingestion: throughput of `process_batch` vs per-tuple
//! `process` at growing batch sizes, over the Figure 8 workload
//! (concurrent tumbling windows, sum aggregation, in-order football
//! stream).
//!
//! Expected shape: batching amortizes the per-tuple slice lookup, edge
//! checks, and trigger probes into one pass per run of in-order records,
//! so throughput climbs with the batch size and saturates once the
//! per-batch overhead is negligible (batch 512+). Batch size 1 matches
//! the per-tuple path.
//!
//! Writes `target/experiments/batch.csv` and a machine-readable summary
//! to `BENCH_batch.json` at the repo root.
//!
//! Run: `cargo run --release -p gss-bench --bin batch`

use std::io::Write as _;

use gss_aggregates::Sum;
use gss_bench::{
    as_elements, build, concurrent_tumbling_queries, fmt_tput, run, run_batched,
    run_best_interleaved, BenchJson, Output, Technique,
};
use gss_core::StreamOrder;
use gss_data::{FootballConfig, FootballGenerator};

fn scale() -> f64 {
    std::env::var("GSS_SCALE").ok().and_then(|s| s.parse().ok()).unwrap_or(1.0)
}

struct Row {
    technique: &'static str,
    windows: usize,
    mode: String,
    batch_size: usize,
    tuples: u64,
    tuples_per_sec: f64,
    speedup_vs_per_tuple: f64,
}

fn main() {
    let base = (1_000_000.0 * scale()) as usize;
    let mut gen = FootballGenerator::new(FootballConfig::default());
    let tuples = gen.take(base);
    let elements = as_elements(&tuples);

    let techniques = [
        Technique::LazySlicing,
        Technique::EagerSlicing,
        Technique::TupleBuffer,
        Technique::Buckets,
    ];
    let window_counts = [1usize, 20];
    let batch_sizes = [1usize, 64, 512, 4096];

    let mut out = Output::new(
        "batch",
        &["technique", "concurrent_windows", "mode", "tuples_per_sec", "speedup"],
    );
    out.print_header();
    let mut rows: Vec<Row> = Vec::new();
    for tech in techniques {
        for &n in &window_counts {
            // Same caps as fig8 so O(windows)-per-tuple baselines finish.
            let cap = match tech {
                Technique::Buckets => (base / 5).min(8_000_000 / n).max(20_000),
                Technique::TupleBuffer => (base / 5).min(4_000_000 / n).max(10_000),
                _ => base,
            };
            let elems = gss_bench::truncate_elements(&elements, cap);
            let queries = concurrent_tumbling_queries(n);

            // Interleave the repetitions of every mode round-robin (the
            // per-tuple baseline is mode `None`) so slow machine-level
            // drift hits all modes equally instead of biasing the
            // speedup ratios — on a shared 1-core host the drift between
            // two back-to-back blocks can exceed 15%. `run_batched` at
            // size <= 1 *is* the per-tuple driver (the fallback that
            // removed the old batch-1 cliff), so measuring it separately
            // would only re-sample scheduler noise into the pinned
            // speedup: the size-1 cell reuses the baseline report.
            let mode_batches: Vec<Option<usize>> = std::iter::once(None)
                .chain(batch_sizes.iter().copied().filter(|&b| b > 1).map(Some))
                .collect();
            let measured = run_best_interleaved(3, &mode_batches, |b| {
                let mut agg = build(tech, Sum, &queries, StreamOrder::InOrder, 0);
                match b {
                    None => run(agg.as_mut(), &elems),
                    Some(b) => run_batched(agg.as_mut(), &elems, *b),
                }
            });
            let reports: Vec<&gss_bench::RunReport> = batch_sizes
                .iter()
                .map(|&b| {
                    let idx = mode_batches.iter().position(|m| *m == Some(b)).unwrap_or(0);
                    &measured[idx]
                })
                .collect();
            let per_tuple = &measured[0];
            let base_tput = per_tuple.throughput();
            out.row(&[
                tech.name().to_string(),
                n.to_string(),
                "per_tuple".to_string(),
                format!("{base_tput:.0}"),
                "1.00".to_string(),
            ]);
            rows.push(Row {
                technique: tech.name(),
                windows: n,
                mode: "per_tuple".to_string(),
                batch_size: 0,
                tuples: per_tuple.tuples,
                tuples_per_sec: base_tput,
                speedup_vs_per_tuple: 1.0,
            });

            for (&b, report) in batch_sizes.iter().zip(&reports) {
                assert_eq!(
                    report.results,
                    per_tuple.results,
                    "{} @ {n} windows batch {b}: result count diverged",
                    tech.name()
                );
                let tput = report.throughput();
                let speedup = tput / base_tput.max(1e-9);
                out.row(&[
                    tech.name().to_string(),
                    n.to_string(),
                    format!("batch_{b}"),
                    format!("{tput:.0}"),
                    format!("{speedup:.2}"),
                ]);
                eprintln!(
                    "  {} @ {} windows, batch {}: {} tuples/s ({:.2}x per-tuple)",
                    tech.name(),
                    n,
                    b,
                    fmt_tput(tput),
                    speedup
                );
                rows.push(Row {
                    technique: tech.name(),
                    windows: n,
                    mode: format!("batch_{b}"),
                    batch_size: b,
                    tuples: report.tuples,
                    tuples_per_sec: tput,
                    speedup_vs_per_tuple: speedup,
                });
            }
        }
    }
    out.finish();
    write_json(&rows);
}

/// Writes `BENCH_batch.json` at the repo root via the shared
/// [`BenchJson`] preamble (`workload` + `cores`).
fn write_json(rows: &[Row]) {
    let mut j =
        BenchJson::create("batch", "fig8-style tumbling sum over football stream (in-order)");
    let f = j.file();
    writeln!(f, "  \"batch_sizes\": [1, 64, 512, 4096],").unwrap();
    writeln!(f, "  \"results\": [").unwrap();
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 == rows.len() { "" } else { "," };
        writeln!(
            f,
            "    {{\"technique\": \"{}\", \"concurrent_windows\": {}, \"mode\": \"{}\", \
             \"batch_size\": {}, \"tuples\": {}, \"tuples_per_sec\": {:.0}, \
             \"speedup_vs_per_tuple\": {:.3}}}{}",
            r.technique,
            r.windows,
            r.mode,
            r.batch_size,
            r.tuples,
            r.tuples_per_sec,
            r.speedup_vs_per_tuple,
            comma
        )
        .unwrap();
    }
    writeln!(f, "  ]").unwrap();
    j.finish();
}
