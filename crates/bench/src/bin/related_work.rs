//! Related-work comparison (beyond the paper's figures): single-query
//! sliding-window aggregation on an in-order stream — the setting the
//! specialized algorithms of the paper's Section 7 were built for.
//!
//! Competitors: general stream slicing (lazy/eager), Pairs, Panes, Cutty,
//! Two-Stacks FIFO aggregation [42], its worst-case-O(1) de-amortization
//! DABA Lite [43], and the SlickDeque monotonic deque [40] (max only). Expected outcome: the specialized single-query
//! structures win by small constant factors on the workloads they support;
//! general slicing stays within the same order of magnitude while also
//! covering multi-query, out-of-order, session, and count workloads — the
//! paper's generality-vs-performance argument in one table.
//!
//! Run: `cargo run --release -p gss-bench --bin related_work`

use gss_aggregates::{Max, Sum};
use gss_baselines::{DabaLiteSliding, Panes, SlickDequeSliding, TwoStacksSliding};
use gss_bench::{as_elements, build, fmt_tput, run, Output, QuerySpec, Technique};
use gss_core::StreamOrder;
use gss_data::{FootballConfig, FootballGenerator};

fn scale() -> f64 {
    std::env::var("GSS_SCALE").ok().and_then(|s| s.parse().ok()).unwrap_or(1.0)
}

fn main() {
    let base = (1_000_000.0 * scale()) as usize;
    let tuples = FootballGenerator::new(FootballConfig::default()).take(base);
    let elements = as_elements(&tuples);
    let (length, slide) = (10_000i64, 1_000i64);
    let query = [QuerySpec::Sliding(length, slide)];

    let mut out = Output::new("related_work", &["aggregation", "technique", "tuples_per_sec"]);
    out.print_header();

    // SUM over one sliding window.
    for tech in
        [Technique::LazySlicing, Technique::EagerSlicing, Technique::Pairs, Technique::Cutty]
    {
        let mut agg = build(tech, Sum, &query, StreamOrder::InOrder, 0);
        let r = run(agg.as_mut(), &elements);
        out.row(&["sum".into(), tech.name().into(), format!("{:.0}", r.throughput())]);
        eprintln!("  sum/{}: {}", tech.name(), fmt_tput(r.throughput()));
    }
    {
        let mut p = Panes::new(Sum);
        p.add_query(length, slide);
        let r = run(&mut p, &elements);
        out.row(&["sum".into(), "Panes".into(), format!("{:.0}", r.throughput())]);
        eprintln!("  sum/Panes: {}", fmt_tput(r.throughput()));
    }
    {
        let mut ts2 = TwoStacksSliding::new(Sum, length, slide);
        let r = run(&mut ts2, &elements);
        out.row(&["sum".into(), "Two-Stacks".into(), format!("{:.0}", r.throughput())]);
        eprintln!("  sum/Two-Stacks: {}", fmt_tput(r.throughput()));
    }
    {
        let mut daba = DabaLiteSliding::new(Sum, length, slide);
        let r = run(&mut daba, &elements);
        out.row(&["sum".into(), "DABA Lite".into(), format!("{:.0}", r.throughput())]);
        eprintln!("  sum/DABA Lite: {}", fmt_tput(r.throughput()));
    }

    // MAX over one sliding window (adds the deque specialist).
    for tech in [Technique::LazySlicing, Technique::EagerSlicing] {
        let mut agg = build(tech, Max, &query, StreamOrder::InOrder, 0);
        let r = run(agg.as_mut(), &elements);
        out.row(&["max".into(), tech.name().into(), format!("{:.0}", r.throughput())]);
        eprintln!("  max/{}: {}", tech.name(), fmt_tput(r.throughput()));
    }
    {
        let mut ts2 = TwoStacksSliding::new(Max, length, slide);
        let r = run(&mut ts2, &elements);
        out.row(&["max".into(), "Two-Stacks".into(), format!("{:.0}", r.throughput())]);
        eprintln!("  max/Two-Stacks: {}", fmt_tput(r.throughput()));
    }
    {
        let mut daba = DabaLiteSliding::new(Max, length, slide);
        let r = run(&mut daba, &elements);
        out.row(&["max".into(), "DABA Lite".into(), format!("{:.0}", r.throughput())]);
        eprintln!("  max/DABA Lite: {}", fmt_tput(r.throughput()));
    }
    {
        let mut sd = SlickDequeSliding::new_max(length, slide);
        let r = run(&mut sd, &elements);
        out.row(&["max".into(), "SlickDeque".into(), format!("{:.0}", r.throughput())]);
        eprintln!("  max/SlickDeque: {}", fmt_tput(r.throughput()));
    }
    out.finish();
}
