//! Figure 12: impact of stream order on throughput.
//!
//! (a) varying the fraction of out-of-order tuples (0–100 %, delays
//!     0–2 s) and
//! (b) varying the delay of out-of-order tuples (ranges 0–0.5 s … 0–8 s at
//!     20 % disorder),
//! both with 20 concurrent windows (paper Section 6.3.1). Expected shape:
//! slicing and buckets stay flat; tuple buffer and aggregate tree decay
//! with the fraction, and the tuple buffer additionally decays with the
//! delay (sorted-insert costs grow with displacement).
//!
//! Run: `cargo run --release -p gss-bench --bin fig12`

use gss_aggregates::Sum;
use gss_bench::{
    build, concurrent_tumbling_queries, fmt_tput, run, truncate_elements, Output, QuerySpec,
    Technique,
};
use gss_core::{StreamElement, StreamOrder};
use gss_data::{make_out_of_order, with_watermarks, FootballConfig, FootballGenerator, OooConfig};

fn scale() -> f64 {
    std::env::var("GSS_SCALE").ok().and_then(|s| s.parse().ok()).unwrap_or(1.0)
}

fn main() {
    let base = (400_000.0 * scale()) as usize;
    let tuples = FootballGenerator::new(FootballConfig::default()).take(base);
    let techniques = [
        Technique::LazySlicing,
        Technique::EagerSlicing,
        Technique::Buckets,
        Technique::TupleBuffer,
        Technique::AggregateTree,
    ];

    let mut queries = concurrent_tumbling_queries(20);
    queries.push(QuerySpec::Session(1_000));

    let mut out = Output::new("fig12", &["plot", "technique", "x", "tuples_per_sec"]);
    out.print_header();

    // (a) fraction sweep, delay fixed at 0-2 s.
    for fraction in [0u8, 10, 20, 40, 60, 80, 100] {
        let cfg = OooConfig { fraction_percent: fraction, max_delay: 2_000, ..Default::default() };
        let arrivals = make_out_of_order(&tuples, cfg);
        let elements: Vec<StreamElement<i64>> = with_watermarks(&arrivals, 500, 2_000);
        for tech in techniques {
            let cap = match tech {
                Technique::AggregateTree => {
                    if fraction == 0 {
                        100_000
                    } else {
                        15_000
                    }
                }
                Technique::TupleBuffer => 60_000,
                _ => base,
            };
            let elems = truncate_elements(&elements, cap);
            let mut agg = build(tech, Sum, &queries, StreamOrder::OutOfOrder, 2_000);
            let report = run(agg.as_mut(), &elems);
            out.row(&[
                "12a".into(),
                tech.name().into(),
                fraction.to_string(),
                format!("{:.0}", report.throughput()),
            ]);
            eprintln!("  12a {}% {}: {}", fraction, tech.name(), fmt_tput(report.throughput()));
        }
    }

    // (b) delay sweep at 20 % disorder.
    for max_delay in [500i64, 1_000, 2_000, 4_000, 8_000] {
        let cfg = OooConfig { fraction_percent: 20, max_delay, ..Default::default() };
        let arrivals = make_out_of_order(&tuples, cfg);
        let elements: Vec<StreamElement<i64>> = with_watermarks(&arrivals, 500, max_delay);
        for tech in techniques {
            let cap = match tech {
                Technique::AggregateTree => 15_000,
                Technique::TupleBuffer => 60_000,
                _ => base,
            };
            let elems = truncate_elements(&elements, cap);
            let mut agg = build(tech, Sum, &queries, StreamOrder::OutOfOrder, max_delay);
            let report = run(agg.as_mut(), &elems);
            out.row(&[
                "12b".into(),
                tech.name().into(),
                max_delay.to_string(),
                format!("{:.0}", report.throughput()),
            ]);
            eprintln!(
                "  12b 0-{}s {}: {}",
                max_delay as f64 / 1000.0,
                tech.name(),
                fmt_tput(report.throughput())
            );
        }
    }
    out.finish();
}
