//! Figure 17: parallelizing the live-visualization dashboard workload.
//!
//! Setup (paper Section 6.4): the M4 aggregation over the football stream,
//! 80 concurrent windows per operator instance, key-partitioned
//! parallelism; lazy slicing vs. buckets. Expected shape: throughput
//! scales ~linearly while cores are free, then flattens as CPU saturates;
//! slicing holds an order of magnitude over buckets at every degree of
//! parallelism; CPU load approaches full utilization.
//!
//! Run: `cargo run --release -p gss-bench --bin fig17`

use gss_aggregates::M4;
use gss_baselines::{BucketMode, Buckets};
use gss_bench::fmt_tput;
use gss_core::operator::{OperatorConfig, WindowOperator};
use gss_core::{StreamElement, StreamOrder, Time, WindowAggregator};
use gss_data::{make_out_of_order, with_watermarks, FootballConfig, FootballGenerator, OooConfig};
use gss_stream::{run_keyed, PipelineConfig};
use gss_windows::TumblingWindow;

fn scale() -> f64 {
    std::env::var("GSS_SCALE").ok().and_then(|s| s.parse().ok()).unwrap_or(1.0)
}

/// 80 concurrent windows per instance: 4 rounds of the 1–20 s lengths.
fn dashboard_lengths() -> impl Iterator<Item = i64> {
    (0..80).map(|i| (i % 20 + 1) * 1_000)
}

fn make_factory(technique: &'static str) -> impl Fn(usize) -> Box<dyn WindowAggregator<M4>> {
    move |_partition| {
        if technique == "Lazy Slicing" {
            let mut op = WindowOperator::new(
                M4,
                OperatorConfig {
                    order: StreamOrder::OutOfOrder,
                    allowed_lateness: 2_000,
                    ..Default::default()
                },
            );
            for l in dashboard_lengths() {
                op.add_query(Box::new(TumblingWindow::new(l))).unwrap();
            }
            Box::new(op)
        } else {
            let mut b = Buckets::new(M4, BucketMode::Aggregate, StreamOrder::OutOfOrder, 2_000);
            for l in dashboard_lengths() {
                b.add_query(Box::new(TumblingWindow::new(l)));
            }
            Box::new(b)
        }
    }
}

fn main() {
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(8);
    eprintln!("machine reports {cores} logical cores");

    let mut out = gss_bench::Output::new(
        "fig17",
        &["technique", "parallelism", "tuples_per_sec", "cpu_percent"],
    );
    out.print_header();

    for technique in ["Lazy Slicing", "Buckets"] {
        let n_tuples = if technique == "Lazy Slicing" {
            (2_000_000.0 * scale()) as usize
        } else {
            (200_000.0 * scale()) as usize
        };
        let tuples = FootballGenerator::new(FootballConfig::default()).take(n_tuples);
        let arrivals = make_out_of_order(
            &tuples,
            OooConfig { fraction_percent: 20, max_delay: 2_000, ..Default::default() },
        );
        // Key by a synthetic 64-way key; M4 inputs carry their timestamp.
        type KeyedRecord = (Time, (u64, (Time, i64)));
        let keyed: Vec<KeyedRecord> = arrivals
            .iter()
            .enumerate()
            .map(|(i, &(ts, v))| (ts, ((i % 64) as u64, (ts, v))))
            .collect();
        let elements: Vec<StreamElement<(u64, (Time, i64))>> = with_watermarks(&keyed, 500, 2_000);
        let factory = make_factory(technique);

        for p in [1usize, 2, 4, 8, 16] {
            if p > cores * 2 {
                continue;
            }
            let report = run_keyed(
                elements.iter().cloned(),
                PipelineConfig::with_parallelism(p).throughput_only(),
                &factory,
            );
            // None when CPU time is unavailable (non-Linux) — report "n/a"
            // rather than a misleading 0 %.
            let cpu = report
                .cpu_utilization()
                .map_or_else(|| "n/a".to_string(), |u| format!("{:.0}", u * 100.0));
            out.row(&[
                technique.to_string(),
                p.to_string(),
                format!("{:.0}", report.throughput()),
                cpu.clone(),
            ]);
            eprintln!("  {technique} x{p}: {} tuples/s, {cpu}% CPU", fmt_tput(report.throughput()));
        }
    }
    out.finish();
}
