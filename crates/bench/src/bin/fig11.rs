//! Figure 11: output latency of the aggregate stores — the cost of
//! producing one final window aggregate from `n` stored entries.
//!
//! (a) sum (algebraic) and (c) median (holistic), for 10 … 100 000
//! entries. Expected shape (paper Section 6.2.4): lazy aggregation (lazy
//! slicing, tuple buffer) scales linearly up to ~1 ms at 10⁵ entries;
//! eager stores (eager slicing, aggregate tree) answer in microseconds
//! (log n combines); buckets answer in nanoseconds (pre-computed, one
//! lookup). Holistic medians shift slicing latencies up (the final merge
//! is expensive) but leave buckets untouched.
//!
//! Run: `cargo run --release -p gss-bench --bin fig11`

use std::collections::BTreeMap;
use std::time::Instant;

use gss_aggregates::{Median, Sum};
use gss_core::{AggregateFunction, Range, SliceStore, StorePolicy};

/// Median latency of `f` over `reps` runs, in nanoseconds.
fn time_ns<R>(reps: usize, mut f: impl FnMut() -> R) -> f64 {
    let mut samples = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t = Instant::now();
        std::hint::black_box(f());
        samples.push(t.elapsed().as_nanos() as f64);
    }
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

/// Builds a slice store with `n` single-tuple slices.
fn slice_store<A: AggregateFunction<Input = i64>>(
    f: A,
    policy: StorePolicy,
    n: usize,
) -> SliceStore<A> {
    let mut st = SliceStore::new(f, policy, false);
    for i in 0..n as i64 {
        st.append_slice(Range::new(i * 10, (i + 1) * 10));
        st.add_in_order(i * 10, i % 97);
    }
    st
}

fn bench_function<A: AggregateFunction<Input = i64> + Copy>(
    f: A,
    label: &str,
    out: &mut gss_bench::Output,
) {
    let reps = 301;
    for n in [10usize, 100, 1_000, 10_000, 100_000] {
        // Lazy slicing: combine n slice partials on demand.
        let lazy = slice_store(f, StorePolicy::Lazy, n);
        let full = Range::new(0, n as i64 * 10);
        let t_lazy = time_ns(reps, || f.lower(&lazy.query_time(full).unwrap()));

        // Eager slicing: FlatFAT over slices, O(log n) combines.
        let eager = slice_store(f, StorePolicy::Eager, n);
        let t_eager = time_ns(reps, || f.lower(&eager.query_time(full).unwrap()));

        // Buckets: the aggregate is precomputed; output is one map lookup
        // plus lower().
        let mut buckets: BTreeMap<i64, A::Partial> = BTreeMap::new();
        let mut acc = f.lift(&0);
        for i in 1..n as i64 {
            acc = f.combine(acc, &f.lift(&(i % 97)));
        }
        buckets.insert(0, acc);
        let t_buckets = time_ns(reps, || f.lower(buckets.get(&0).unwrap()));

        // Tuple buffer: fold n raw tuples.
        let tuples: Vec<i64> = (0..n as i64).map(|i| i % 97).collect();
        let t_buffer = time_ns(reps, || f.lower(&f.lift_all(tuples.iter()).unwrap()));

        // Aggregate tree over tuples: FlatFAT with n leaves.
        let mut tree = gss_core::FlatFat::with_capacity(f, n);
        for i in 0..n as i64 {
            tree.push(Some(f.lift(&(i % 97))));
        }
        let t_tree = time_ns(reps, || f.lower(&tree.query(0, n).unwrap()));

        for (tech, ns) in [
            ("Lazy Slicing", t_lazy),
            ("Eager Slicing", t_eager),
            ("Buckets", t_buckets),
            ("Tuple Buffer", t_buffer),
            ("Aggregate Tree", t_tree),
        ] {
            out.row(&[label.to_string(), tech.to_string(), n.to_string(), format!("{ns:.0}")]);
        }
    }
}

fn main() {
    let mut out = Output::new("fig11", &["aggregation", "technique", "entries", "latency_ns"]);
    out.print_header();
    bench_function(Sum, "sum", &mut out);
    bench_function(Median, "median", &mut out);
    out.finish();
}

use gss_bench::Output;
