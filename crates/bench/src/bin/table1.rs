//! Table 1: memory usage of the eight aggregation techniques, measured
//! against the paper's cost formulas.
//!
//! Scenario: 50 000 tuples, 500 slices/windows in the allowed lateness,
//! sum aggregation (8-byte partials, 16-byte stored tuples). For every
//! row the measured deep size of the operator state is printed next to
//! the Table-1 formula estimate; the match validates the memory model
//! (capacity slack of growable containers makes measured ≥ formula).
//!
//! Run: `cargo run --release -p gss-bench --bin table1`

use gss_aggregates::Sum;
use gss_baselines::DabaLiteSliding;
use gss_bench::{as_elements, build, run, Output, QuerySpec, Technique};
use gss_core::{StreamOrder, Time};

const TUPLES: usize = 50_000;
const SLICES: usize = 500;
const SIZE_TUPLE: usize = 16; // (Time, i64)
const SIZE_AGG: usize = 8; // i64 partial
const SIZE_SLICE_META: usize = 48; // range + first/last + len
const SIZE_BUCKET: usize = 40; // end + partial + map node overhead

fn measure(tech: Technique, count_based: bool) -> usize {
    let span: Time = 1_000_000;
    let step = span / TUPLES as Time;
    let tuples: Vec<(Time, i64)> = (0..TUPLES as i64).map(|i| (i * step, i % 97)).collect();
    let query = if count_based {
        QuerySpec::CountTumbling((TUPLES / SLICES) as u64)
    } else {
        QuerySpec::Tumbling(span / SLICES as Time)
    };
    let mut agg = build(tech, Sum, &[query], StreamOrder::OutOfOrder, span * 2);
    run(agg.as_mut(), &as_elements(&tuples)).memory_bytes
}

/// Memory of the related-work single-query FIFO aggregator (DABA Lite)
/// on the same stream with one tumbling window per slice span: one
/// `(ts, partial)` slot per in-window tuple, no sharing across queries.
fn measure_daba() -> usize {
    let span: Time = 1_000_000;
    let step = span / TUPLES as Time;
    let tuples: Vec<(Time, i64)> = (0..TUPLES as i64).map(|i| (i * step, i % 97)).collect();
    let len = span / SLICES as Time;
    let mut agg = DabaLiteSliding::new(Sum, len, len);
    run(&mut agg, &as_elements(&tuples)).memory_bytes
}

fn main() {
    let t = TUPLES;
    let s = SLICES;
    let rows: Vec<(&str, Technique, bool, usize)> = vec![
        ("1. Tuple Buffer", Technique::TupleBuffer, false, t * SIZE_TUPLE),
        ("2. Aggregate Tree", Technique::AggregateTree, false, t * SIZE_TUPLE + (t - 1) * SIZE_AGG),
        ("3. Agg. Buckets", Technique::Buckets, false, s * SIZE_AGG + s * SIZE_BUCKET),
        (
            "4. Tuple Buckets",
            Technique::TupleBuckets,
            false,
            s * ((t / s) * SIZE_TUPLE + SIZE_BUCKET),
        ),
        ("5. Lazy Slicing", Technique::LazySlicing, false, s * (SIZE_AGG + SIZE_SLICE_META)),
        (
            "6. Eager Slicing",
            Technique::EagerSlicing,
            false,
            s * (SIZE_AGG + SIZE_SLICE_META) + (s - 1) * SIZE_AGG,
        ),
        (
            "7. Lazy Slicing on tuples",
            Technique::LazySlicing,
            true,
            t * SIZE_TUPLE + s * (SIZE_AGG + SIZE_SLICE_META),
        ),
        (
            "8. Eager Slicing on tuples",
            Technique::EagerSlicing,
            true,
            t * SIZE_TUPLE + s * (SIZE_AGG + SIZE_SLICE_META) + (s - 1) * SIZE_AGG,
        ),
    ];

    let mut out =
        Output::new("table1", &["row", "measured_bytes", "formula_bytes", "measured_over_formula"]);
    out.print_header();
    for (name, tech, count_based, formula) in rows {
        let measured = measure(tech, count_based);
        out.row(&[
            name.to_string(),
            measured.to_string(),
            formula.to_string(),
            format!("{:.2}", measured as f64 / formula as f64),
        ]);
    }
    // Supplemental related-work row: per-query FIFO aggregation keeps one
    // slot per in-window tuple, so a single window costs (t/s) tuples —
    // but unlike rows 5-8 that state multiplies with every extra query.
    {
        let measured = measure_daba();
        let formula = (t / s) * SIZE_TUPLE;
        out.row(&[
            "9. DABA Lite (single query)".to_string(),
            measured.to_string(),
            formula.to_string(),
            format!("{:.2}", measured as f64 / formula as f64),
        ]);
    }
    out.finish();
    println!(
        "\nratios near 1-3x validate the Table-1 model (growable containers\n\
         hold capacity slack; buckets carry map-node overhead)"
    );
}
