//! Fold kernels: hand-written [`AggregateFunction::fold_slice`] (and
//! paired-column [`AggregateFunction::fold_slice_pairs`]) bulk kernels vs
//! the default lift/combine loop they replace, plus the pipeline-level
//! effect of latency-bounded adaptive batching.
//!
//! Part 1 (kernel microbench): for each aggregate with a kernel — the
//! single-column ones (count/sum/avg/min/max/mincount/maxcount and
//! stddev's moments fold) and the paired-column ones (argmin/argmax on
//! `(value, arg)` pairs, m4 on `(ts, value)` pairs) — time the kernel on
//! a contiguous run at lengths {64, 512, 4096, 16384} against two
//! baselines:
//!
//! * `default` — the per-element lift/combine loop executed through
//!   function pointers the optimizer cannot see through. This is the
//!   default fold as a dispatch-opaque runtime runs it (debug builds,
//!   dynamically loaded UDFs, megamorphic JIT call sites — the setting
//!   the paper's own JVM implementation pays on every element), and the
//!   headline `speedup` column is measured against it.
//! * `inline_default` — [`default_fold_slice`] monomorphized and fully
//!   inlined, exactly as this engine's own fallback path compiles. For
//!   sum-like `i64` folds LLVM auto-vectorizes that loop too, so
//!   `speedup_vs_inline` hovers near 1.0x there; for the min/max family
//!   the contiguous `fold(min)` reduction idiom is one LLVM fails to
//!   match, and for the float moments fold IEEE semantics forbid
//!   reassociation outright, so the explicit lane accumulators
//!   (`gss_aggregates::lanes`) beat even the inline default. The
//!   kernels *guarantee* the vectorized floor instead of hoping for it
//!   (see EXPERIMENTS.md).
//!
//! Filters for iteration and CI smokes, mirroring the ooo bin's
//! `--store`/`--ooo`: `--function <name>` benches one function,
//! `--run-len <n>` one run length. Any filter skips the pipeline sweep
//! and leaves `BENCH_fold.json` untouched.
//!
//! Part 2 (pipeline sweep): `run_keyed` over a 64-key sliding-window sum
//! under full-throttle load, comparing per-tuple ingestion, fixed batch
//! sizes 1 and 4096, and the default adaptive batching (target 4096,
//! 1 ms deadline). `fixed_1` is the configuration cliff adaptive
//! retires: one channel send per record, far below even the per-tuple
//! mode (which still ships transport-sized chunks). Adaptive reaches the
//! target size under load — >=1.0x the per-tuple baseline with no batch
//! knob to misconfigure, and >=90 % of fixed-4096 throughput (the gap is
//! its amortized deadline polling). The operator-level batch-1 cliff is
//! pinned separately in BENCH_batch.json, where `run_batched` at size 1
//! now falls back to the plain per-tuple driver.
//!
//! Writes `target/experiments/fold.csv` and a machine-readable summary
//! to `BENCH_fold.json` at the repo root.
//!
//! Run: `cargo run --release -p gss-bench --bin fold`

use std::hint::black_box;
use std::io::Write as _;
use std::time::Instant;

use gss_aggregates::{
    ArgMax, ArgMin, Avg, CountAgg, Max, MaxCount, Min, MinCount, SampleStdDev, Sum, M4,
};
use gss_bench::{fmt_tput, BenchJson, Output};
use gss_core::{
    default_fold_slice, AggregateFunction, OperatorConfig, StreamElement, Time, WindowAggregator,
    WindowOperator,
};
use gss_stream::{run_keyed, PipelineConfig, PipelineReport};
use gss_windows::SlidingWindow;

fn scale() -> f64 {
    std::env::var("GSS_SCALE").ok().and_then(|s| s.parse().ok()).unwrap_or(1.0)
}

const RUN_LENS: [usize; 4] = [64, 512, 4096, 16384];

/// Every function the microbench covers, in report order.
const FUNCTIONS: [&str; 11] = [
    "count", "sum", "avg", "min", "max", "stddev", "mincount", "maxcount", "argmin", "argmax", "m4",
];

/// Parses `--function <name>` from the CLI, defaulting to all of them.
fn function_filter() -> Option<&'static str> {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--function" {
            let want = args.next().unwrap_or_default();
            let picked = FUNCTIONS.iter().copied().find(|&name| name == want);
            assert!(picked.is_some(), "unknown function {want:?}; expected one of {FUNCTIONS:?}");
            return picked;
        }
    }
    None
}

/// Parses `--run-len <n>` from the CLI, defaulting to the full
/// {64, 512, 4096, 16384} sweep.
fn run_len_filter() -> Vec<usize> {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--run-len" {
            let want: usize = args
                .next()
                .and_then(|s| s.parse().ok())
                .expect("--run-len takes one of 64, 512, 4096, 16384");
            assert!(RUN_LENS.contains(&want), "--run-len must be one of 64, 512, 4096, 16384");
            return vec![want];
        }
    }
    RUN_LENS.to_vec()
}

/// A pipeline-sweep mode: display name + config constructor.
type Mode = (&'static str, fn() -> PipelineConfig);

struct KernelRow {
    function: &'static str,
    run_len: usize,
    kernel_ns_per_elem: f64,
    default_ns_per_elem: f64,
    inline_default_ns_per_elem: f64,
    speedup: f64,
    speedup_vs_inline: f64,
    has_kernel: bool,
}

#[derive(Clone, Copy)]
enum FoldPath {
    Kernel,
    InlineDefault,
    OpaqueDefault,
}

/// The default lift/combine loop with per-element calls routed through
/// `black_box`ed function pointers, so the optimizer can neither inline
/// nor vectorize across elements — the shape every dispatch-opaque
/// runtime executes.
fn opaque_fold<A: AggregateFunction>(f: &A, values: &[A::Input]) -> Option<A::Partial> {
    let lift: fn(&A, &A::Input) -> A::Partial = black_box(A::lift);
    let combine: fn(&A, A::Partial, &A::Partial) -> A::Partial = black_box(A::combine);
    let mut acc: Option<A::Partial> = None;
    for v in values {
        let lifted = lift(f, v);
        acc = Some(match acc {
            None => lifted,
            Some(a) => combine(f, a, &lifted),
        });
    }
    acc
}

/// Nanoseconds per element for one fold variant, best of `reps` passes.
/// `times` is only consulted on the kernel path of paired-column
/// functions; pass the plain run order for single-column ones.
fn time_fold<A: AggregateFunction>(
    f: &A,
    times: &[Time],
    values: &[A::Input],
    iters: usize,
    reps: usize,
    path: FoldPath,
) -> f64 {
    let paired = f.has_pair_kernel();
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        for _ in 0..iters {
            let partial = match path {
                FoldPath::Kernel if paired => {
                    f.fold_slice_pairs(black_box(times), black_box(values))
                }
                FoldPath::Kernel => f.fold_slice(black_box(values)),
                FoldPath::InlineDefault => default_fold_slice(f, black_box(values)),
                FoldPath::OpaqueDefault => opaque_fold(f, black_box(values)),
            };
            black_box(partial);
        }
        let ns = start.elapsed().as_secs_f64() * 1e9 / (iters * values.len()) as f64;
        best = best.min(ns);
    }
    best
}

#[allow(clippy::too_many_arguments)]
fn bench_kernel<A: AggregateFunction>(
    f: &A,
    name: &'static str,
    times: &[Time],
    values: &[A::Input],
    run_lens: &[usize],
    budget: usize,
    rows: &mut Vec<KernelRow>,
    out: &mut Output,
) {
    for &len in run_lens {
        let run = &values[..len];
        let ts = &times[..len];
        // Folds must agree (the equivalence proptests pin this for every
        // function — bit-exactly for integer kernels, deterministic and
        // ulp-bounded for the float moments; this is a cheap smoke).
        assert!(
            f.fold_slice_pairs(ts, run).is_some(),
            "{name}: fold of a non-empty run produced nothing"
        );
        let iters = (budget / len).max(8);
        let kernel_ns = time_fold(f, ts, run, iters, 3, FoldPath::Kernel);
        let inline_ns = time_fold(f, ts, run, iters, 3, FoldPath::InlineDefault);
        let default_ns = time_fold(f, ts, run, iters, 3, FoldPath::OpaqueDefault);
        let speedup = default_ns / kernel_ns.max(1e-12);
        let speedup_vs_inline = inline_ns / kernel_ns.max(1e-12);
        out.row(&[
            name.to_string(),
            len.to_string(),
            format!("{kernel_ns:.3}"),
            format!("{default_ns:.3}"),
            format!("{inline_ns:.3}"),
            format!("{speedup:.2}"),
            format!("{speedup_vs_inline:.2}"),
        ]);
        eprintln!(
            "  {name} @ {len}: kernel {kernel_ns:.2} ns/elem, default {default_ns:.2} \
             ({speedup:.2}x), inline default {inline_ns:.2} ({speedup_vs_inline:.2}x)"
        );
        rows.push(KernelRow {
            function: name,
            run_len: len,
            kernel_ns_per_elem: kernel_ns,
            default_ns_per_elem: default_ns,
            inline_default_ns_per_elem: inline_ns,
            speedup,
            speedup_vs_inline,
            has_kernel: f.has_fold_kernel() || f.has_pair_kernel(),
        });
    }
}

struct PipeRow {
    mode: &'static str,
    tuples_per_sec: f64,
    speedup_vs_per_tuple: f64,
    fold_hits: u64,
    fold_misses: u64,
    batch_p50: u64,
}

fn make_keyed_elements(n: i64, keys: u64) -> Vec<StreamElement<(u64, i64)>> {
    let mut v = Vec::with_capacity(n as usize + n as usize / 1000 + 1);
    for i in 0..n {
        v.push(StreamElement::Record { ts: i, value: (i as u64 % keys, (i % 101) - 50) });
        if i % 1000 == 999 {
            v.push(StreamElement::Watermark(i - 100));
        }
    }
    v.push(StreamElement::Watermark(i64::MAX - 1));
    v
}

fn keyed_factory(_partition: usize) -> Box<dyn WindowAggregator<Sum>> {
    let mut op = WindowOperator::new(Sum, OperatorConfig::out_of_order(1_000));
    op.add_query(Box::new(SlidingWindow::new(10_000, 1_000))).unwrap();
    Box::new(op)
}

/// Best-of-`reps` per mode, with repetitions *interleaved* across modes
/// (round-robin) so slow machine-level drift — CPU frequency, a noisy
/// neighbor on a shared host — hits every mode equally instead of
/// biasing whichever mode happened to run in the fast window. The
/// mode-to-mode *ratios* are the figure; absolute numbers still drift.
fn run_pipe_sweep(
    elements: &[StreamElement<(u64, i64)>],
    modes: &[Mode],
    reps: usize,
) -> Vec<PipelineReport<i64>> {
    let mut best: Vec<Option<PipelineReport<i64>>> = modes.iter().map(|_| None).collect();
    for _ in 0..reps {
        for (slot, (_, cfg)) in best.iter_mut().zip(modes) {
            let r = run_keyed(elements.iter().cloned(), cfg(), keyed_factory);
            if slot.as_ref().is_none_or(|b| r.elapsed < b.elapsed) {
                *slot = Some(r);
            }
        }
    }
    best.into_iter()
        .map(|r| match r {
            Some(r) => r,
            None => unreachable!("at least one repetition"),
        })
        .collect()
}

fn main() {
    let s = scale();
    let budget = (40_000_000.0 * s).max(100_000.0) as usize;
    let cores = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1);

    // Deterministic value pattern; modest magnitudes so avg/stddev stay
    // well-conditioned at 16k elements. The value range (1001 distinct
    // values over 16k elements) also guarantees extremum ties, so the
    // mincount/argmin-family kernels exercise their tie paths.
    let max_len = *RUN_LENS.last().unwrap_or(&4096);
    let values: Vec<i64> = (0..max_len as i64).map(|i| (i * 37 + 11) % 1_001 - 500).collect();
    // Paired columns: monotone record times, (value, arg) for argmin/argmax,
    // (ts, value) for m4.
    let times: Vec<Time> = (0..max_len as Time).collect();
    let arg_pairs: Vec<(i64, i64)> =
        values.iter().enumerate().map(|(i, &v)| (v, i as i64)).collect();
    let ts_pairs: Vec<(Time, i64)> =
        values.iter().enumerate().map(|(i, &v)| (i as Time, v)).collect();

    let fun = function_filter();
    let run_lens = run_len_filter();
    let pick = |name: &str| fun.is_none_or(|want| want == name);

    let mut out = Output::new(
        "fold",
        &[
            "function",
            "run_len",
            "kernel_ns_per_elem",
            "default_ns_per_elem",
            "inline_default_ns_per_elem",
            "speedup",
            "speedup_vs_inline",
        ],
    );
    out.print_header();
    let mut kernel_rows: Vec<KernelRow> = Vec::new();

    macro_rules! cell {
        ($f:expr, $name:literal, $vals:expr) => {
            if pick($name) {
                bench_kernel(
                    $f,
                    $name,
                    &times,
                    $vals,
                    &run_lens,
                    budget,
                    &mut kernel_rows,
                    &mut out,
                );
            }
        };
    }
    cell!(&CountAgg, "count", &values);
    cell!(&Sum, "sum", &values);
    cell!(&Avg, "avg", &values);
    cell!(&Min, "min", &values);
    cell!(&Max, "max", &values);
    cell!(&SampleStdDev, "stddev", &values);
    cell!(&MinCount, "mincount", &values);
    cell!(&MaxCount, "maxcount", &values);
    cell!(&ArgMin, "argmin", &arg_pairs);
    cell!(&ArgMax, "argmax", &arg_pairs);
    cell!(&M4, "m4", &ts_pairs);
    out.finish();

    // A filtered run (`--function` / `--run-len`) is for iteration and CI
    // smokes: skip the pipeline sweep and leave BENCH_fold.json untouched.
    if fun.is_some() || run_lens.len() != RUN_LENS.len() {
        eprintln!("  (filtered sweep: pipeline sweep skipped, BENCH_fold.json left untouched)");
        return;
    }

    // Pipeline sweep: adaptive batching vs per-tuple and fixed sizes under
    // full-throttle load (records fed as fast as the source loop runs, so
    // the 1 ms deadline almost never fires and adaptive chunks reach the
    // target size).
    let n = (2_000_000.0 * s).max(50_000.0) as i64;
    let reps = if s < 0.1 { 2 } else { 5 };
    let elements = make_keyed_elements(n, 64);
    eprintln!("\npipeline sweep: {n} records, 64 keys, {cores} cores, reps {reps}");

    let modes: [Mode; 4] = [
        ("per_tuple", || PipelineConfig::with_parallelism(1).throughput_only().per_tuple()),
        ("fixed_1", || PipelineConfig::with_parallelism(1).throughput_only().with_batch_size(1)),
        ("fixed_4096", || {
            PipelineConfig::with_parallelism(1).throughput_only().with_batch_size(4096)
        }),
        ("adaptive", || PipelineConfig::with_parallelism(1).throughput_only()),
    ];

    let reports = run_pipe_sweep(&elements, &modes, reps);
    let base_tput = reports[0].throughput();
    let base_count = reports[0].result_count;
    let mut pipe_rows: Vec<PipeRow> = Vec::new();
    for ((mode, _), report) in modes.iter().zip(&reports) {
        assert_eq!(
            report.result_count, base_count,
            "{mode}: window count diverged from per-tuple baseline"
        );
        let speedup = report.throughput() / base_tput.max(1e-9);
        eprintln!(
            "  {mode}: {} tuples/s ({speedup:.2}x per-tuple), fold {}h/{}m, batches {}",
            fmt_tput(report.throughput()),
            report.fold_hits,
            report.fold_misses,
            report.batch_sizes.summary()
        );
        pipe_rows.push(PipeRow {
            mode,
            tuples_per_sec: report.throughput(),
            speedup_vs_per_tuple: speedup,
            fold_hits: report.fold_hits,
            fold_misses: report.fold_misses,
            batch_p50: report.batch_sizes.quantile(0.5),
        });
    }

    write_json(&kernel_rows, &pipe_rows);
}

/// Writes `BENCH_fold.json` at the repo root via the shared
/// [`BenchJson`] preamble (`workload` + `cores`).
fn write_json(kernels: &[KernelRow], pipe: &[PipeRow]) {
    let mut j = BenchJson::create(
        "fold",
        "fold_slice / fold_slice_pairs lane kernels vs default lift/combine fold on contiguous \
         runs; plus run_keyed sliding(10s,1s) sum over 64 keys comparing per-tuple, fixed and \
         adaptive batching",
    );
    let f = j.file();
    writeln!(
        f,
        "  \"note\": \"default = per-element lift/combine through non-inlinable calls (the \
         dispatch-opaque shape; speedup is measured against it); inline_default = the same \
         loop monomorphized+inlined. LLVM auto-vectorizes the inline loop for sum-like i64 \
         folds (speedup_vs_inline ~= 1.0 there by construction), but not for the min/max \
         reduction idiom or the IEEE-ordered float moments, where the explicit lane \
         accumulators win outright; argmin/argmax/m4 run on the paired-column \
         fold_slice_pairs hook\","
    )
    .unwrap();
    writeln!(f, "  \"run_lens\": [64, 512, 4096, 16384],").unwrap();
    writeln!(f, "  \"kernels\": [").unwrap();
    for (i, r) in kernels.iter().enumerate() {
        let comma = if i + 1 == kernels.len() { "" } else { "," };
        writeln!(
            f,
            "    {{\"function\": \"{}\", \"run_len\": {}, \"kernel_ns_per_elem\": {:.3}, \
             \"default_ns_per_elem\": {:.3}, \"inline_default_ns_per_elem\": {:.3}, \
             \"speedup\": {:.3}, \"speedup_vs_inline\": {:.3}, \"has_kernel\": {}}}{}",
            r.function,
            r.run_len,
            r.kernel_ns_per_elem,
            r.default_ns_per_elem,
            r.inline_default_ns_per_elem,
            r.speedup,
            r.speedup_vs_inline,
            r.has_kernel,
            comma
        )
        .unwrap();
    }
    writeln!(f, "  ],").unwrap();
    writeln!(f, "  \"pipeline\": [").unwrap();
    for (i, r) in pipe.iter().enumerate() {
        let comma = if i + 1 == pipe.len() { "" } else { "," };
        writeln!(
            f,
            "    {{\"mode\": \"{}\", \"tuples_per_sec\": {:.0}, \"speedup_vs_per_tuple\": \
             {:.3}, \"fold_hits\": {}, \"fold_misses\": {}, \"batch_p50\": {}}}{}",
            r.mode,
            r.tuples_per_sec,
            r.speedup_vs_per_tuple,
            r.fold_hits,
            r.fold_misses,
            r.batch_p50,
            comma
        )
        .unwrap();
    }
    writeln!(f, "  ]").unwrap();
    j.finish();
}
