//! Fold kernels: hand-written [`AggregateFunction::fold_slice`] bulk
//! kernels vs the default lift/combine loop they replace, plus the
//! pipeline-level effect of latency-bounded adaptive batching.
//!
//! Part 1 (kernel microbench): for each aggregate with a kernel (and
//! stddev's moments fold), time `fold_slice` on a contiguous run at
//! lengths {64, 512, 4096, 16384} against two baselines:
//!
//! * `default` — the per-element lift/combine loop executed through
//!   function pointers the optimizer cannot see through. This is the
//!   default fold as a dispatch-opaque runtime runs it (debug builds,
//!   dynamically loaded UDFs, megamorphic JIT call sites — the setting
//!   the paper's own JVM implementation pays on every element), and the
//!   headline `speedup` column is measured against it.
//! * `inline_default` — [`default_fold_slice`] monomorphized and fully
//!   inlined, exactly as this engine's own fallback path compiles. For
//!   `i64` inputs LLVM auto-vectorizes that loop too, so
//!   `speedup_vs_inline` hovers near 1.0x: the hand-written kernels
//!   don't outrun the optimizer when it fires, they *guarantee* the
//!   vectorized floor when it doesn't (reduction idiom matching is
//!   fragile — see EXPERIMENTS.md) and in dispatch-opaque contexts.
//!
//! Part 2 (pipeline sweep): `run_keyed` over a 64-key sliding-window sum
//! under full-throttle load, comparing per-tuple ingestion, fixed batch
//! sizes 1 and 4096, and the default adaptive batching (target 4096,
//! 1 ms deadline). `fixed_1` is the configuration cliff adaptive
//! retires: one channel send per record, far below even the per-tuple
//! mode (which still ships transport-sized chunks). Adaptive reaches the
//! target size under load — >=1.0x the per-tuple baseline with no batch
//! knob to misconfigure, and >=90 % of fixed-4096 throughput (the gap is
//! its amortized deadline polling). The operator-level batch-1 cliff is
//! pinned separately in BENCH_batch.json, where `run_batched` at size 1
//! now falls back to the plain per-tuple driver.
//!
//! Writes `target/experiments/fold.csv` and a machine-readable summary
//! to `BENCH_fold.json` at the repo root.
//!
//! Run: `cargo run --release -p gss-bench --bin fold`

use std::hint::black_box;
use std::io::Write as _;
use std::time::Instant;

use gss_aggregates::{Avg, CountAgg, Max, Min, SampleStdDev, Sum};
use gss_bench::{fmt_tput, BenchJson, Output};
use gss_core::{
    default_fold_slice, AggregateFunction, OperatorConfig, StreamElement, WindowAggregator,
    WindowOperator,
};
use gss_stream::{run_keyed, PipelineConfig, PipelineReport};
use gss_windows::SlidingWindow;

fn scale() -> f64 {
    std::env::var("GSS_SCALE").ok().and_then(|s| s.parse().ok()).unwrap_or(1.0)
}

const RUN_LENS: [usize; 4] = [64, 512, 4096, 16384];

/// A pipeline-sweep mode: display name + config constructor.
type Mode = (&'static str, fn() -> PipelineConfig);

struct KernelRow {
    function: &'static str,
    run_len: usize,
    kernel_ns_per_elem: f64,
    default_ns_per_elem: f64,
    inline_default_ns_per_elem: f64,
    speedup: f64,
    speedup_vs_inline: f64,
    has_kernel: bool,
}

#[derive(Clone, Copy)]
enum FoldPath {
    Kernel,
    InlineDefault,
    OpaqueDefault,
}

/// The default lift/combine loop with per-element calls routed through
/// `black_box`ed function pointers, so the optimizer can neither inline
/// nor vectorize across elements — the shape every dispatch-opaque
/// runtime executes.
fn opaque_fold<A: AggregateFunction<Input = i64>>(f: &A, values: &[i64]) -> Option<A::Partial> {
    let lift: fn(&A, &i64) -> A::Partial = black_box(A::lift);
    let combine: fn(&A, A::Partial, &A::Partial) -> A::Partial = black_box(A::combine);
    let mut acc: Option<A::Partial> = None;
    for v in values {
        let lifted = lift(f, v);
        acc = Some(match acc {
            None => lifted,
            Some(a) => combine(f, a, &lifted),
        });
    }
    acc
}

/// Nanoseconds per element for one fold variant, best of `reps` passes.
fn time_fold<A: AggregateFunction<Input = i64>>(
    f: &A,
    values: &[i64],
    iters: usize,
    reps: usize,
    path: FoldPath,
) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        for _ in 0..iters {
            let partial = match path {
                FoldPath::Kernel => f.fold_slice(black_box(values)),
                FoldPath::InlineDefault => default_fold_slice(f, black_box(values)),
                FoldPath::OpaqueDefault => opaque_fold(f, black_box(values)),
            };
            black_box(partial);
        }
        let ns = start.elapsed().as_secs_f64() * 1e9 / (iters * values.len()) as f64;
        best = best.min(ns);
    }
    best
}

fn bench_kernel<A: AggregateFunction<Input = i64>>(
    f: &A,
    name: &'static str,
    values: &[i64],
    budget: usize,
    rows: &mut Vec<KernelRow>,
    out: &mut Output,
) {
    for &len in &RUN_LENS {
        let run = &values[..len];
        // Folds must agree (the equivalence proptests pin this bit-exactly
        // for every function; this is a cheap smoke of the same).
        assert!(f.fold_slice(run).is_some(), "{name}: fold of a non-empty run");
        let iters = (budget / len).max(8);
        let kernel_ns = time_fold(f, run, iters, 3, FoldPath::Kernel);
        let inline_ns = time_fold(f, run, iters, 3, FoldPath::InlineDefault);
        let default_ns = time_fold(f, run, iters, 3, FoldPath::OpaqueDefault);
        let speedup = default_ns / kernel_ns.max(1e-12);
        let speedup_vs_inline = inline_ns / kernel_ns.max(1e-12);
        out.row(&[
            name.to_string(),
            len.to_string(),
            format!("{kernel_ns:.3}"),
            format!("{default_ns:.3}"),
            format!("{inline_ns:.3}"),
            format!("{speedup:.2}"),
            format!("{speedup_vs_inline:.2}"),
        ]);
        eprintln!(
            "  {name} @ {len}: kernel {kernel_ns:.2} ns/elem, default {default_ns:.2} \
             ({speedup:.2}x), inline default {inline_ns:.2} ({speedup_vs_inline:.2}x)"
        );
        rows.push(KernelRow {
            function: name,
            run_len: len,
            kernel_ns_per_elem: kernel_ns,
            default_ns_per_elem: default_ns,
            inline_default_ns_per_elem: inline_ns,
            speedup,
            speedup_vs_inline,
            has_kernel: f.has_fold_kernel(),
        });
    }
}

struct PipeRow {
    mode: &'static str,
    tuples_per_sec: f64,
    speedup_vs_per_tuple: f64,
    fold_hits: u64,
    fold_misses: u64,
    batch_p50: u64,
}

fn make_keyed_elements(n: i64, keys: u64) -> Vec<StreamElement<(u64, i64)>> {
    let mut v = Vec::with_capacity(n as usize + n as usize / 1000 + 1);
    for i in 0..n {
        v.push(StreamElement::Record { ts: i, value: (i as u64 % keys, (i % 101) - 50) });
        if i % 1000 == 999 {
            v.push(StreamElement::Watermark(i - 100));
        }
    }
    v.push(StreamElement::Watermark(i64::MAX - 1));
    v
}

fn keyed_factory(_partition: usize) -> Box<dyn WindowAggregator<Sum>> {
    let mut op = WindowOperator::new(Sum, OperatorConfig::out_of_order(1_000));
    op.add_query(Box::new(SlidingWindow::new(10_000, 1_000))).unwrap();
    Box::new(op)
}

/// Best-of-`reps` per mode, with repetitions *interleaved* across modes
/// (round-robin) so slow machine-level drift — CPU frequency, a noisy
/// neighbor on a shared host — hits every mode equally instead of
/// biasing whichever mode happened to run in the fast window. The
/// mode-to-mode *ratios* are the figure; absolute numbers still drift.
fn run_pipe_sweep(
    elements: &[StreamElement<(u64, i64)>],
    modes: &[Mode],
    reps: usize,
) -> Vec<PipelineReport<i64>> {
    let mut best: Vec<Option<PipelineReport<i64>>> = modes.iter().map(|_| None).collect();
    for _ in 0..reps {
        for (slot, (_, cfg)) in best.iter_mut().zip(modes) {
            let r = run_keyed(elements.iter().cloned(), cfg(), keyed_factory);
            if slot.as_ref().is_none_or(|b| r.elapsed < b.elapsed) {
                *slot = Some(r);
            }
        }
    }
    best.into_iter()
        .map(|r| match r {
            Some(r) => r,
            None => unreachable!("at least one repetition"),
        })
        .collect()
}

fn main() {
    let s = scale();
    let budget = (40_000_000.0 * s).max(100_000.0) as usize;
    let cores = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1);

    // Deterministic value pattern; modest magnitudes so avg/stddev stay
    // well-conditioned at 16k elements.
    let max_len = *RUN_LENS.last().unwrap_or(&4096);
    let values: Vec<i64> = (0..max_len as i64).map(|i| (i * 37 + 11) % 1_001 - 500).collect();

    let mut out = Output::new(
        "fold",
        &[
            "function",
            "run_len",
            "kernel_ns_per_elem",
            "default_ns_per_elem",
            "inline_default_ns_per_elem",
            "speedup",
            "speedup_vs_inline",
        ],
    );
    out.print_header();
    let mut kernel_rows: Vec<KernelRow> = Vec::new();

    bench_kernel(&CountAgg, "count", &values, budget, &mut kernel_rows, &mut out);
    bench_kernel(&Sum, "sum", &values, budget, &mut kernel_rows, &mut out);
    bench_kernel(&Avg, "avg", &values, budget, &mut kernel_rows, &mut out);
    bench_kernel(&Min, "min", &values, budget, &mut kernel_rows, &mut out);
    bench_kernel(&Max, "max", &values, budget, &mut kernel_rows, &mut out);
    bench_kernel(&SampleStdDev, "stddev", &values, budget, &mut kernel_rows, &mut out);
    out.finish();

    // Pipeline sweep: adaptive batching vs per-tuple and fixed sizes under
    // full-throttle load (records fed as fast as the source loop runs, so
    // the 1 ms deadline almost never fires and adaptive chunks reach the
    // target size).
    let n = (2_000_000.0 * s).max(50_000.0) as i64;
    let reps = if s < 0.1 { 2 } else { 5 };
    let elements = make_keyed_elements(n, 64);
    eprintln!("\npipeline sweep: {n} records, 64 keys, {cores} cores, reps {reps}");

    let modes: [Mode; 4] = [
        ("per_tuple", || PipelineConfig::with_parallelism(1).throughput_only().per_tuple()),
        ("fixed_1", || PipelineConfig::with_parallelism(1).throughput_only().with_batch_size(1)),
        ("fixed_4096", || {
            PipelineConfig::with_parallelism(1).throughput_only().with_batch_size(4096)
        }),
        ("adaptive", || PipelineConfig::with_parallelism(1).throughput_only()),
    ];

    let reports = run_pipe_sweep(&elements, &modes, reps);
    let base_tput = reports[0].throughput();
    let base_count = reports[0].result_count;
    let mut pipe_rows: Vec<PipeRow> = Vec::new();
    for ((mode, _), report) in modes.iter().zip(&reports) {
        assert_eq!(
            report.result_count, base_count,
            "{mode}: window count diverged from per-tuple baseline"
        );
        let speedup = report.throughput() / base_tput.max(1e-9);
        eprintln!(
            "  {mode}: {} tuples/s ({speedup:.2}x per-tuple), fold {}h/{}m, batches {}",
            fmt_tput(report.throughput()),
            report.fold_hits,
            report.fold_misses,
            report.batch_sizes.summary()
        );
        pipe_rows.push(PipeRow {
            mode,
            tuples_per_sec: report.throughput(),
            speedup_vs_per_tuple: speedup,
            fold_hits: report.fold_hits,
            fold_misses: report.fold_misses,
            batch_p50: report.batch_sizes.quantile(0.5),
        });
    }

    write_json(&kernel_rows, &pipe_rows);
}

/// Writes `BENCH_fold.json` at the repo root via the shared
/// [`BenchJson`] preamble (`workload` + `cores`).
fn write_json(kernels: &[KernelRow], pipe: &[PipeRow]) {
    let mut j = BenchJson::create(
        "fold",
        "fold_slice kernel vs default lift/combine fold on contiguous runs; \
         plus run_keyed sliding(10s,1s) sum over 64 keys comparing per-tuple, fixed and \
         adaptive batching",
    );
    let f = j.file();
    writeln!(
        f,
        "  \"note\": \"default = per-element lift/combine through non-inlinable calls (the \
         dispatch-opaque shape; speedup is measured against it); inline_default = the same \
         loop monomorphized+inlined, which LLVM auto-vectorizes for i64, so speedup_vs_inline \
         ~= 1.0 by construction\","
    )
    .unwrap();
    writeln!(f, "  \"run_lens\": [64, 512, 4096, 16384],").unwrap();
    writeln!(f, "  \"kernels\": [").unwrap();
    for (i, r) in kernels.iter().enumerate() {
        let comma = if i + 1 == kernels.len() { "" } else { "," };
        writeln!(
            f,
            "    {{\"function\": \"{}\", \"run_len\": {}, \"kernel_ns_per_elem\": {:.3}, \
             \"default_ns_per_elem\": {:.3}, \"inline_default_ns_per_elem\": {:.3}, \
             \"speedup\": {:.3}, \"speedup_vs_inline\": {:.3}, \"has_kernel\": {}}}{}",
            r.function,
            r.run_len,
            r.kernel_ns_per_elem,
            r.default_ns_per_elem,
            r.inline_default_ns_per_elem,
            r.speedup,
            r.speedup_vs_inline,
            r.has_kernel,
            comma
        )
        .unwrap();
    }
    writeln!(f, "  ],").unwrap();
    writeln!(f, "  \"pipeline\": [").unwrap();
    for (i, r) in pipe.iter().enumerate() {
        let comma = if i + 1 == pipe.len() { "" } else { "," };
        writeln!(
            f,
            "    {{\"mode\": \"{}\", \"tuples_per_sec\": {:.0}, \"speedup_vs_per_tuple\": \
             {:.3}, \"fold_hits\": {}, \"fold_misses\": {}, \"batch_p50\": {}}}{}",
            r.mode,
            r.tuples_per_sec,
            r.speedup_vs_per_tuple,
            r.fold_hits,
            r.fold_misses,
            r.batch_p50,
            comma
        )
        .unwrap();
    }
    writeln!(f, "  ]").unwrap();
    j.finish();
}
