//! Out-of-order ingestion: throughput of the batched late-run grouping
//! path against the per-tuple fallback (a Figure 11-style sweep over
//! disorder).
//!
//! Sweep: OOO fraction {0, 5, 20, 50} % (delays 0–2 s) × batch size
//! {64, 512} × {lazy, eager, finger} stores, 20 concurrent tumbling
//! windows over the football stream with periodic watermarks. Three
//! modes per cell:
//!
//! * `per_tuple` — one `process` call per record (no batching at all);
//! * `batch_b` — `process_batch`, late runs grouped per covering slice,
//!   eager repairs deferred per batch;
//! * `fallback_b` — `process_batch` with `disable_ooo_batching`, i.e. the
//!   run-breaking path: in-order runs fold fast, but every late tuple is
//!   handled individually.
//!
//! Expected shape: at 0 % all three batched modes coincide; as disorder
//! grows, `fallback` decays toward per-tuple while `batch` amortizes the
//! slice lookup, the combine, and (eager) the FlatFAT repair over whole
//! late runs, widening the gap with the batch size.
//!
//! Writes `target/experiments/ooo.csv` and a machine-readable summary to
//! `BENCH_ooo.json` at the repo root.
//!
//! Run: `cargo run --release -p gss-bench --bin ooo` (optionally
//! `-- --store lazy|eager|finger` to sweep a single store, and/or
//! `-- --ooo 0|5|20|50` for a single disorder cell).

use std::io::Write as _;

use gss_aggregates::Sum;
use gss_bench::{
    build_slicing, concurrent_tumbling_queries, fmt_tput, run, run_batched, run_best_interleaved,
    BenchJson, Output, RunReport,
};
use gss_core::{StorePolicy, StreamOrder};
use gss_data::{make_out_of_order, with_watermarks, FootballConfig, FootballGenerator, OooConfig};

fn scale() -> f64 {
    std::env::var("GSS_SCALE").ok().and_then(|s| s.parse().ok()).unwrap_or(1.0)
}

/// All store policies the sweep covers, in report order.
const STORES: [(StorePolicy, &str); 3] = [
    (StorePolicy::Lazy, "lazy"),
    (StorePolicy::Eager, "eager"),
    (StorePolicy::FingerTree, "finger"),
];

/// Parses `--store <name>` from the CLI, defaulting to every store.
fn store_filter() -> Vec<(StorePolicy, &'static str)> {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--store" {
            let want = args.next().unwrap_or_default();
            let picked: Vec<_> = STORES.iter().copied().filter(|&(_, name)| name == want).collect();
            assert!(
                !picked.is_empty(),
                "unknown store {want:?}; expected one of lazy, eager, finger"
            );
            return picked;
        }
    }
    STORES.to_vec()
}

/// Parses `--ooo <percent>` from the CLI, defaulting to the full
/// {0, 5, 20, 50} sweep.
fn fraction_filter() -> Vec<u8> {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--ooo" {
            let want: u8 = args
                .next()
                .and_then(|s| s.parse().ok())
                .expect("--ooo takes a percentage (0, 5, 20, or 50)");
            assert!([0, 5, 20, 50].contains(&want), "--ooo must be one of 0, 5, 20, 50");
            return vec![want];
        }
    }
    vec![0, 5, 20, 50]
}

struct Row {
    policy: &'static str,
    ooo_percent: u8,
    mode: String,
    batch_size: usize,
    tuples: u64,
    tuples_per_sec: f64,
    speedup_vs_fallback: f64,
}

fn main() {
    let base = (1_000_000.0 * scale()) as usize;
    let tuples = FootballGenerator::new(FootballConfig::default()).take(base);
    let queries = concurrent_tumbling_queries(20);
    let fractions = fraction_filter();
    let batch_sizes = [64usize, 512];
    let lateness = 2_000;

    let mut out = Output::new(
        "ooo",
        &["store", "ooo_percent", "mode", "tuples_per_sec", "speedup_vs_fallback"],
    );
    out.print_header();
    let mut rows: Vec<Row> = Vec::new();
    // Store comparisons are the headline of this sweep, so the
    // repetitions of one (fraction, mode) cell are interleaved
    // round-robin across the stores: every store's rep k runs
    // back-to-back with the others', and slow machine drift (load,
    // thermal) lands *across* cells instead of skewing one store.
    let stores = store_filter();
    for &fraction in &fractions {
        let cfg = OooConfig { fraction_percent: fraction, max_delay: 2_000, ..Default::default() };
        let arrivals = make_out_of_order(&tuples, cfg);
        let elements = with_watermarks(&arrivals, 500, 2_000);
        let build = |policy: StorePolicy, disable: bool| {
            build_slicing(Sum, policy, &queries, StreamOrder::OutOfOrder, lateness, disable)
        };

        let per_tuple = run_best_interleaved(5, &stores, |&(policy, _)| {
            let mut agg = build(policy, false);
            run(agg.as_mut(), &elements)
        });
        // fallbacks[&b][i] / batches[&b][i] belong to stores[i].
        let mut fallbacks: Vec<Vec<RunReport>> = Vec::new();
        let mut batches: Vec<Vec<RunReport>> = Vec::new();
        for &b in &batch_sizes {
            let fallback = run_best_interleaved(5, &stores, |&(policy, _)| {
                let mut agg = build(policy, true);
                run_batched(agg.as_mut(), &elements, b)
            });
            let batched = run_best_interleaved(5, &stores, |&(policy, _)| {
                let mut agg = build(policy, false);
                run_batched(agg.as_mut(), &elements, b)
            });
            for (i, &(_, name)) in stores.iter().enumerate() {
                assert_eq!(
                    fallback[i].results, per_tuple[i].results,
                    "{name} {fraction}% fallback batch {b}: result count diverged"
                );
                assert_eq!(
                    batched[i].results, per_tuple[i].results,
                    "{name} {fraction}% batch {b}: result count diverged"
                );
            }
            fallbacks.push(fallback);
            batches.push(batched);
        }

        // Report grouped per store for a tidy csv.
        for (i, &(_, policy_name)) in stores.iter().enumerate() {
            let mut record = |mode: String, batch_size: usize, report: &RunReport, fb: f64| {
                let tput = report.throughput();
                let speedup = tput / fb.max(1e-9);
                out.row(&[
                    policy_name.to_string(),
                    fraction.to_string(),
                    mode.clone(),
                    format!("{tput:.0}"),
                    format!("{speedup:.2}"),
                ]);
                eprintln!(
                    "  {policy_name} {fraction}% {mode}: {} tuples/s ({speedup:.2}x fallback)",
                    fmt_tput(tput)
                );
                rows.push(Row {
                    policy: policy_name,
                    ooo_percent: fraction,
                    mode,
                    batch_size,
                    tuples: report.tuples,
                    tuples_per_sec: tput,
                    speedup_vs_fallback: speedup,
                });
            };
            for (bi, &b) in batch_sizes.iter().enumerate() {
                let fb = fallbacks[bi][i].throughput();
                record(format!("fallback_{b}"), b, &fallbacks[bi][i], fb);
                record(format!("batch_{b}"), b, &batches[bi][i], fb);
            }
            let fb512 = fallbacks[batch_sizes.len() - 1][i].throughput();
            record("per_tuple".to_string(), 0, &per_tuple[i], fb512);
        }
    }
    out.finish();
    // A filtered run (`--store` / `--ooo`) is for iteration; only a
    // full sweep may overwrite the checked-in benchmark summary.
    if store_filter().len() == STORES.len() && fraction_filter().len() == 4 {
        let stores: Vec<&str> = STORES.iter().map(|&(_, name)| name).collect();
        write_json(&stores, &rows);
    } else {
        eprintln!("  (filtered sweep: BENCH_ooo.json left untouched)");
    }
}

/// Writes `BENCH_ooo.json` at the repo root via the shared
/// [`BenchJson`] preamble (`workload` + `cores`).
fn write_json(stores: &[&str], rows: &[Row]) {
    let mut j = BenchJson::create(
        "ooo",
        "fig11-style 20 tumbling windows over football stream, \
         disorder sweep (delays 0-2s, watermarks every 500ms lagging 2s)",
    );
    j.stores(stores);
    let f = j.file();
    writeln!(f, "  \"ooo_percents\": [0, 5, 20, 50],").unwrap();
    writeln!(f, "  \"batch_sizes\": [64, 512],").unwrap();
    writeln!(f, "  \"results\": [").unwrap();
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 == rows.len() { "" } else { "," };
        writeln!(
            f,
            "    {{\"store\": \"{}\", \"ooo_percent\": {}, \"mode\": \"{}\", \
             \"batch_size\": {}, \"tuples\": {}, \"tuples_per_sec\": {:.0}, \
             \"speedup_vs_fallback\": {:.3}}}{}",
            r.policy,
            r.ooo_percent,
            r.mode,
            r.batch_size,
            r.tuples,
            r.tuples_per_sec,
            r.speedup_vs_fallback,
            comma
        )
        .unwrap();
    }
    writeln!(f, "  ]").unwrap();
    j.finish();
}
