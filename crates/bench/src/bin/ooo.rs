//! Out-of-order ingestion: throughput of the batched late-run grouping
//! path against the per-tuple fallback (a Figure 11-style sweep over
//! disorder).
//!
//! Sweep: OOO fraction {0, 5, 20, 50} % (delays 0–2 s) × batch size
//! {64, 512} × {lazy, eager} stores, 20 concurrent tumbling windows over
//! the football stream with periodic watermarks. Three modes per cell:
//!
//! * `per_tuple` — one `process` call per record (no batching at all);
//! * `batch_b` — `process_batch`, late runs grouped per covering slice,
//!   eager repairs deferred per batch;
//! * `fallback_b` — `process_batch` with `disable_ooo_batching`, i.e. the
//!   run-breaking path: in-order runs fold fast, but every late tuple is
//!   handled individually.
//!
//! Expected shape: at 0 % all three batched modes coincide; as disorder
//! grows, `fallback` decays toward per-tuple while `batch` amortizes the
//! slice lookup, the combine, and (eager) the FlatFAT repair over whole
//! late runs, widening the gap with the batch size.
//!
//! Writes `target/experiments/ooo.csv` and a machine-readable summary to
//! `BENCH_ooo.json` at the repo root.
//!
//! Run: `cargo run --release -p gss-bench --bin ooo`

use std::io::Write as _;

use gss_aggregates::Sum;
use gss_bench::{
    build_slicing, concurrent_tumbling_queries, fmt_tput, run, run_batched, run_best, BenchJson,
    Output, RunReport,
};
use gss_core::{StorePolicy, StreamOrder};
use gss_data::{make_out_of_order, with_watermarks, FootballConfig, FootballGenerator, OooConfig};

fn scale() -> f64 {
    std::env::var("GSS_SCALE").ok().and_then(|s| s.parse().ok()).unwrap_or(1.0)
}

struct Row {
    policy: &'static str,
    ooo_percent: u8,
    mode: String,
    batch_size: usize,
    tuples: u64,
    tuples_per_sec: f64,
    speedup_vs_fallback: f64,
}

fn main() {
    let base = (1_000_000.0 * scale()) as usize;
    let tuples = FootballGenerator::new(FootballConfig::default()).take(base);
    let queries = concurrent_tumbling_queries(20);
    let fractions = [0u8, 5, 20, 50];
    let batch_sizes = [64usize, 512];
    let lateness = 2_000;

    let mut out = Output::new(
        "ooo",
        &["store", "ooo_percent", "mode", "tuples_per_sec", "speedup_vs_fallback"],
    );
    out.print_header();
    let mut rows: Vec<Row> = Vec::new();
    for (policy, policy_name) in [(StorePolicy::Lazy, "lazy"), (StorePolicy::Eager, "eager")] {
        for &fraction in &fractions {
            let cfg =
                OooConfig { fraction_percent: fraction, max_delay: 2_000, ..Default::default() };
            let arrivals = make_out_of_order(&tuples, cfg);
            let elements = with_watermarks(&arrivals, 500, 2_000);

            let build = |disable: bool| {
                build_slicing(Sum, policy, &queries, StreamOrder::OutOfOrder, lateness, disable)
            };
            let record = |out: &mut Output,
                          rows: &mut Vec<Row>,
                          mode: String,
                          batch_size: usize,
                          report: &RunReport,
                          fallback_tput: f64| {
                let tput = report.throughput();
                let speedup = tput / fallback_tput.max(1e-9);
                out.row(&[
                    policy_name.to_string(),
                    fraction.to_string(),
                    mode.clone(),
                    format!("{tput:.0}"),
                    format!("{speedup:.2}"),
                ]);
                eprintln!(
                    "  {policy_name} {fraction}% {mode}: {} tuples/s ({speedup:.2}x fallback)",
                    fmt_tput(tput)
                );
                rows.push(Row {
                    policy: policy_name,
                    ooo_percent: fraction,
                    mode,
                    batch_size,
                    tuples: report.tuples,
                    tuples_per_sec: tput,
                    speedup_vs_fallback: speedup,
                });
            };

            let per_tuple = run_best(5, || build(false), |agg| run(agg, &elements));
            for &b in &batch_sizes {
                let fallback = run_best(5, || build(true), |agg| run_batched(agg, &elements, b));
                assert_eq!(
                    fallback.results, per_tuple.results,
                    "{policy_name} {fraction}% fallback batch {b}: result count diverged"
                );
                let batched = run_best(5, || build(false), |agg| run_batched(agg, &elements, b));
                assert_eq!(
                    batched.results, per_tuple.results,
                    "{policy_name} {fraction}% batch {b}: result count diverged"
                );
                let fallback_tput = fallback.throughput();
                record(&mut out, &mut rows, format!("fallback_{b}"), b, &fallback, fallback_tput);
                record(&mut out, &mut rows, format!("batch_{b}"), b, &batched, fallback_tput);
            }
            let fallback_512 = rows
                .iter()
                .rev()
                .find(|r| {
                    r.policy == policy_name && r.ooo_percent == fraction && r.mode == "fallback_512"
                })
                .map(|r| r.tuples_per_sec)
                .unwrap_or(0.0);
            record(&mut out, &mut rows, "per_tuple".to_string(), 0, &per_tuple, fallback_512);
        }
    }
    out.finish();
    write_json(&rows);
}

/// Writes `BENCH_ooo.json` at the repo root via the shared
/// [`BenchJson`] preamble (`workload` + `cores`).
fn write_json(rows: &[Row]) {
    let mut j = BenchJson::create(
        "ooo",
        "fig11-style 20 tumbling windows over football stream, \
         disorder sweep (delays 0-2s, watermarks every 500ms lagging 2s)",
    );
    let f = j.file();
    writeln!(f, "  \"ooo_percents\": [0, 5, 20, 50],").unwrap();
    writeln!(f, "  \"batch_sizes\": [64, 512],").unwrap();
    writeln!(f, "  \"results\": [").unwrap();
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 == rows.len() { "" } else { "," };
        writeln!(
            f,
            "    {{\"store\": \"{}\", \"ooo_percent\": {}, \"mode\": \"{}\", \
             \"batch_size\": {}, \"tuples\": {}, \"tuples_per_sec\": {:.0}, \
             \"speedup_vs_fallback\": {:.3}}}{}",
            r.policy,
            r.ooo_percent,
            r.mode,
            r.batch_size,
            r.tuples,
            r.tuples_per_sec,
            r.speedup_vs_fallback,
            comma
        )
        .unwrap();
    }
    writeln!(f, "  ]").unwrap();
    j.finish();
}
