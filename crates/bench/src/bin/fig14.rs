//! Figure 14: holistic (median) aggregation throughput across techniques
//! and datasets.
//!
//! Setup (paper Section 6.3.2): 20 concurrent windows, 20 % out-of-order
//! tuples. Expected shape: slicing beats buckets and tuple buffer by
//! avoiding per-window recomputation (sorted, run-length-encoded slice
//! partials); the machine dataset (37 distinct values) runs faster than
//! football (84 232 distinct values) because RLE compresses better.
//!
//! Run: `cargo run --release -p gss-bench --bin fig14`

use gss_aggregates::Median;
use gss_bench::{
    build, concurrent_tumbling_queries, fmt_tput, run, truncate_elements, Output, Technique,
};
use gss_core::{StreamElement, StreamOrder, Time};
use gss_data::{
    make_out_of_order, with_watermarks, FootballConfig, FootballGenerator, MachineConfig,
    MachineGenerator, OooConfig,
};

fn scale() -> f64 {
    std::env::var("GSS_SCALE").ok().and_then(|s| s.parse().ok()).unwrap_or(1.0)
}

fn main() {
    let base = (150_000.0 * scale()) as usize;
    let mut out = Output::new("fig14", &["dataset", "technique", "tuples_per_sec"]);
    out.print_header();

    for ds in ["football", "machine"] {
        let tuples: Vec<(Time, i64)> = match ds {
            "football" => FootballGenerator::new(FootballConfig::default()).take(base),
            _ => MachineGenerator::new(MachineConfig { rate_hz: 2000, ..Default::default() })
                .take(base),
        };
        let arrivals = make_out_of_order(
            &tuples,
            OooConfig { fraction_percent: 20, max_delay: 2_000, ..Default::default() },
        );
        let elements: Vec<StreamElement<i64>> = with_watermarks(&arrivals, 500, 2_000);
        let queries = concurrent_tumbling_queries(20);

        for tech in [Technique::LazySlicing, Technique::TupleBuckets, Technique::TupleBuffer] {
            let cap = match tech {
                Technique::LazySlicing => base,
                _ => base.min(30_000),
            };
            let elems = truncate_elements(&elements, cap);
            let mut agg = build(tech, Median, &queries, StreamOrder::OutOfOrder, 2_000);
            let report = run(agg.as_mut(), &elems);
            out.row(&[
                ds.to_string(),
                tech.name().to_string(),
                format!("{:.0}", report.throughput()),
            ]);
            eprintln!("  [{ds}] {}: {}", tech.name(), fmt_tput(report.throughput()));
        }
    }
    out.finish();
}
