//! Figure 9: throughput with 20 % out-of-order tuples and an added
//! session window, as concurrent windows grow — on both datasets.
//!
//! Workload (paper Section 6.2.2): the Figure-8 tumbling queries plus a
//! time-based session window (gap 1 s), 20 % out-of-order tuples with
//! random delays of 0–2 s. Expected shape: general slicing holds an order
//! of magnitude over buckets/tuple buffer; aggregate trees collapse (leaf
//! inserts); football and machine data behave almost identically.
//!
//! Run: `cargo run --release -p gss-bench --bin fig9`

use gss_aggregates::Sum;
use gss_bench::{build, concurrent_tumbling_queries, fmt_tput, run, Output, QuerySpec, Technique};
use gss_core::{StreamElement, StreamOrder, Time};
use gss_data::{
    make_out_of_order, with_watermarks, FootballConfig, FootballGenerator, MachineConfig,
    MachineGenerator, OooConfig,
};

fn scale() -> f64 {
    std::env::var("GSS_SCALE").ok().and_then(|s| s.parse().ok()).unwrap_or(1.0)
}

fn dataset(name: &str, n: usize) -> Vec<(Time, i64)> {
    match name {
        "football" => FootballGenerator::new(FootballConfig::default()).take(n),
        "machine" => {
            // Raise the machine rate so both datasets cover similar spans.
            MachineGenerator::new(MachineConfig { rate_hz: 2000, ..Default::default() }).take(n)
        }
        _ => unreachable!(),
    }
}

fn main() {
    let base = (500_000.0 * scale()) as usize;
    let ooo = OooConfig { fraction_percent: 20, max_delay: 2_000, ..Default::default() };
    let techniques = [
        Technique::LazySlicing,
        Technique::EagerSlicing,
        Technique::Buckets,
        Technique::TupleBuffer,
        Technique::AggregateTree,
    ];
    let window_counts = [1usize, 5, 10, 50, 100, 500, 1000];

    let mut out =
        Output::new("fig9", &["dataset", "technique", "concurrent_windows", "tuples_per_sec"]);
    out.print_header();
    for ds in ["football", "machine"] {
        let tuples = dataset(ds, base);
        let arrivals = make_out_of_order(&tuples, ooo);
        let elements: Vec<StreamElement<i64>> = with_watermarks(&arrivals, 500, 2_000);
        for tech in techniques {
            for &n in &window_counts {
                let cap = match tech {
                    Technique::Buckets => base.min(4_000_000 / n).max(10_000),
                    Technique::TupleBuffer => base.min(1_000_000 / n).max(5_000),
                    Technique::AggregateTree => 20_000,
                    _ => base,
                };
                let elems = gss_bench::truncate_elements(&elements, cap);
                let mut queries = concurrent_tumbling_queries(n);
                queries.push(QuerySpec::Session(1_000));
                let mut agg = build(tech, Sum, &queries, StreamOrder::OutOfOrder, 2_000);
                let report = run(agg.as_mut(), &elems);
                out.row(&[
                    ds.to_string(),
                    tech.name().to_string(),
                    n.to_string(),
                    format!("{:.0}", report.throughput()),
                ]);
                eprintln!(
                    "  [{ds}] {} @ {n}: {} tuples/s",
                    tech.name(),
                    fmt_tput(report.throughput())
                );
            }
        }
    }
    out.finish();
}
