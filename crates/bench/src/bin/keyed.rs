//! Keyed window aggregation: shared-timeline keyed operator vs the naive
//! map-of-operators baseline (beyond the paper — per-key state with
//! shared slice metadata, key-grouped batches, and heap-gated
//! watermarks).
//!
//! Two phases:
//!
//! * **Throughput** — sliding-window sum (1 s length, 250 ms slide) over
//!   an in-order stream round-robining across K ∈ {1, 100, 10k, 100k,
//!   1M} keys, periodic watermarks, batched ingestion. Both operators
//!   must produce identical result sets; the shared operator should pull
//!   ahead as K grows (one boundary decision per run instead of per
//!   key, no per-key operator state).
//! * **Watermark latency** — K drained idle keys plus a small active
//!   set; measures the cost of one `on_watermark` call as K grows. The
//!   naive baseline sweeps every key per watermark (O(K)); the shared
//!   operator's trigger heap wakes only keys with due windows, so its
//!   cost should stay flat (sublinear in idle keys).
//!
//! Writes `target/experiments/keyed.csv` and a machine-readable summary
//! to `BENCH_keyed.json` at the repo root.
//!
//! Run: `cargo run --release -p gss-bench --bin keyed`

use std::io::Write as _;
use std::time::Instant;

use gss_aggregates::Sum;
use gss_bench::{fmt_tput, BenchJson, Output};
use gss_core::{
    KeyedConfig, KeyedWindowOperator, NaiveKeyedOperator, PerKey, StreamElement, Time,
    WindowAggregator, WindowResult,
};
use gss_windows::SlidingWindow;

fn scale() -> f64 {
    std::env::var("GSS_SCALE").ok().and_then(|s| s.parse().ok()).unwrap_or(1.0)
}

const WINDOW_LEN: i64 = 1_000;
const WINDOW_SLIDE: i64 = 250;
const LATENESS: i64 = 500;
const BATCH: usize = 512;

fn keyed_config() -> KeyedConfig {
    KeyedConfig::default().with_allowed_lateness(LATENESS)
}

fn windows() -> Vec<Box<dyn gss_core::WindowFunction>> {
    vec![Box::new(SlidingWindow::new(WINDOW_LEN, WINDOW_SLIDE))]
}

fn shared_op() -> KeyedWindowOperator<Sum> {
    let op = KeyedWindowOperator::new(Sum, windows(), keyed_config());
    assert!(op.is_shared(), "sliding sum must take the shared path");
    op
}

fn naive_op() -> NaiveKeyedOperator<Sum> {
    NaiveKeyedOperator::new(Sum, windows(), keyed_config())
}

/// In-order keyed stream: one record per millisecond round-robining over
/// `keys`, watermarks every second lagging [`LATENESS`], final flush.
fn make_elements(n: usize, keys: u64) -> Vec<StreamElement<(u64, i64)>> {
    let mut v: Vec<StreamElement<(u64, i64)>> = Vec::with_capacity(n + n / 1_000 + 2);
    for i in 0..n {
        let ts = i as Time;
        v.push(StreamElement::Record { ts, value: (i as u64 % keys, 1) });
        if i % 1_000 == 999 {
            v.push(StreamElement::Watermark(ts - LATENESS));
        }
    }
    v.push(StreamElement::Watermark(i64::MAX - 1));
    v
}

struct DriveReport {
    tuples: u64,
    seconds: f64,
    memory_bytes: usize,
    /// Sorted `(key, start, end, value, is_update)` result fingerprint.
    results: Vec<(u64, Time, Time, i64, bool)>,
}

impl DriveReport {
    fn throughput(&self) -> f64 {
        self.tuples as f64 / self.seconds.max(1e-9)
    }
}

/// Drives a keyed aggregator through the element stream with batched
/// ingestion, collecting a sorted result fingerprint for equality checks.
fn drive(
    agg: &mut dyn WindowAggregator<PerKey<Sum>>,
    elements: &[StreamElement<(u64, i64)>],
) -> DriveReport {
    let mut out: Vec<WindowResult<(u64, i64)>> = Vec::new();
    let mut buf: Vec<(Time, (u64, i64))> = Vec::with_capacity(BATCH);
    let mut results: Vec<(u64, Time, Time, i64, bool)> = Vec::new();
    let mut tuples = 0u64;
    let start = Instant::now();
    for e in elements {
        match e {
            StreamElement::Record { ts, value: (k, v) } => {
                buf.push((*ts, (*k, *v)));
                if buf.len() >= BATCH {
                    tuples += buf.len() as u64;
                    agg.process_batch(&buf, &mut out);
                    buf.clear();
                }
            }
            StreamElement::Watermark(wm) => {
                if !buf.is_empty() {
                    tuples += buf.len() as u64;
                    agg.process_batch(&buf, &mut out);
                    buf.clear();
                }
                agg.on_watermark(*wm, &mut out);
            }
            StreamElement::Punctuation(_) => {}
        }
        results.extend(
            out.drain(..).map(|r| (r.value.0, r.range.start, r.range.end, r.value.1, r.is_update)),
        );
    }
    if !buf.is_empty() {
        tuples += buf.len() as u64;
        agg.process_batch(&buf, &mut out);
        results.extend(
            out.drain(..).map(|r| (r.value.0, r.range.start, r.range.end, r.value.1, r.is_update)),
        );
    }
    let seconds = start.elapsed().as_secs_f64();
    results.sort_unstable();
    DriveReport { tuples, seconds, memory_bytes: agg.memory_bytes(), results }
}

/// Best-of-`reps` drive (first run warms caches); results must agree
/// across repetitions.
fn drive_best(
    reps: usize,
    build: impl Fn() -> Box<dyn WindowAggregator<PerKey<Sum>>>,
    elements: &[StreamElement<(u64, i64)>],
) -> DriveReport {
    let mut best: Option<DriveReport> = None;
    for _ in 0..reps {
        let mut agg = build();
        let r = drive(agg.as_mut(), elements);
        if let Some(b) = &best {
            assert_eq!(r.results, b.results, "results diverged across repetitions");
        }
        if best.as_ref().is_none_or(|b| r.seconds < b.seconds) {
            best = Some(r);
        }
    }
    best.expect("at least one repetition")
}

struct TputRow {
    keys: u64,
    mode: &'static str,
    tuples: u64,
    tuples_per_sec: f64,
    speedup_vs_naive: f64,
    memory_bytes: usize,
}

struct WmRow {
    idle_keys: u64,
    mode: &'static str,
    us_per_watermark: f64,
}

fn main() {
    let s = scale();
    let n = (2_000_000.0 * s).max(10_000.0) as usize;
    let key_counts = [1u64, 100, 10_000, 100_000, 1_000_000];
    let reps = if s < 0.1 { 2 } else { 3 };

    let mut out = Output::new(
        "keyed",
        &["phase", "keys", "mode", "tuples_per_sec_or_us", "speedup_vs_naive", "memory_bytes"],
    );
    out.print_header();

    // Phase 1: ingestion + emission throughput vs key count.
    let mut tput_rows: Vec<TputRow> = Vec::new();
    for &keys in &key_counts {
        let elements = make_elements(n, keys);
        let naive = drive_best(reps, || Box::new(naive_op()), &elements);
        let shared = drive_best(reps, || Box::new(shared_op()), &elements);
        assert_eq!(
            shared.results, naive.results,
            "shared and naive keyed operators disagree at {keys} keys"
        );
        assert!(!shared.results.is_empty(), "no windows emitted at {keys} keys");
        let speedup = shared.throughput() / naive.throughput().max(1e-9);
        for (mode, r, sp) in [("naive", &naive, 1.0), ("shared", &shared, speedup)] {
            out.row(&[
                "throughput".to_string(),
                keys.to_string(),
                mode.to_string(),
                format!("{:.0}", r.throughput()),
                format!("{sp:.2}"),
                r.memory_bytes.to_string(),
            ]);
            eprintln!(
                "  throughput {keys} keys {mode}: {} tuples/s ({sp:.2}x naive)",
                fmt_tput(r.throughput())
            );
            tput_rows.push(TputRow {
                keys,
                mode,
                tuples: r.tuples,
                tuples_per_sec: r.throughput(),
                speedup_vs_naive: sp,
                memory_bytes: r.memory_bytes,
            });
        }
    }

    // Phase 2: per-watermark cost with K drained idle keys + 64 active.
    let mut wm_rows: Vec<WmRow> = Vec::new();
    let idle_counts: Vec<u64> = [10_000u64, 100_000, 1_000_000]
        .iter()
        .map(|&k| ((k as f64 * s) as u64).max(1_000))
        .collect();
    const ACTIVE: u64 = 64;
    const ROUNDS: usize = 200;
    for &idle in &idle_counts {
        for mode in ["naive", "shared"] {
            let mut agg: Box<dyn WindowAggregator<PerKey<Sum>>> = match mode {
                "naive" => Box::new(naive_op()),
                _ => Box::new(shared_op()),
            };
            let mut sink = Vec::new();
            // Seed K idle keys inside one slice, then drain their windows
            // so nothing about them is pending.
            let seed: Vec<(Time, (u64, i64))> =
                (0..idle).map(|k| ((k % 200) as Time, (k + ACTIVE, 1))).collect();
            for chunk in seed.chunks(BATCH) {
                agg.process_batch(chunk, &mut sink);
            }
            agg.on_watermark(200 + WINDOW_LEN + LATENESS, &mut sink);
            sink.clear();
            // Active keys keep producing; time only the watermark calls.
            let mut wm_time = 0.0f64;
            let base = 200 + WINDOW_LEN + LATENESS + 1;
            for r in 0..ROUNDS {
                let ts = base + (r as Time) * WINDOW_SLIDE;
                let batch: Vec<(Time, (u64, i64))> = (0..ACTIVE).map(|k| (ts, (k, 1))).collect();
                agg.process_batch(&batch, &mut sink);
                let t0 = Instant::now();
                agg.on_watermark(ts - 1, &mut sink);
                wm_time += t0.elapsed().as_secs_f64();
                sink.clear();
            }
            let us = wm_time / ROUNDS as f64 * 1e6;
            out.row(&[
                "watermark".to_string(),
                idle.to_string(),
                mode.to_string(),
                format!("{us:.2}"),
                String::new(),
                String::new(),
            ]);
            eprintln!("  watermark {idle} idle keys {mode}: {us:.2} us/watermark");
            wm_rows.push(WmRow { idle_keys: idle, mode, us_per_watermark: us });
        }
    }
    // The point of the heap: shared watermark cost must not scale with
    // idle keys the way the naive sweep does.
    let cost = |mode: &str, idle: u64| {
        wm_rows
            .iter()
            .find(|r| r.mode == mode && r.idle_keys == idle)
            .map(|r| r.us_per_watermark)
            .unwrap_or(0.0)
    };
    let max_idle = *idle_counts.last().expect("non-empty");
    assert!(
        cost("shared", max_idle) < cost("naive", max_idle),
        "shared watermark sweep should beat the O(keys) naive sweep at {max_idle} idle keys"
    );

    out.finish();
    write_json(&tput_rows, &wm_rows);
}

/// Writes `BENCH_keyed.json` at the repo root via the shared
/// [`BenchJson`] preamble (`workload` + `cores`).
fn write_json(tput: &[TputRow], wm: &[WmRow]) {
    let mut j = BenchJson::create(
        "keyed",
        "sliding(1s, 250ms) sum, in-order keyed stream, watermarks every \
         1s lagging 500ms, batch 512; shared keyed operator vs naive map of per-key operators",
    );
    let f = j.file();
    writeln!(f, "  \"throughput\": [").unwrap();
    for (i, r) in tput.iter().enumerate() {
        let comma = if i + 1 == tput.len() { "" } else { "," };
        writeln!(
            f,
            "    {{\"keys\": {}, \"mode\": \"{}\", \"tuples\": {}, \"tuples_per_sec\": {:.0}, \
             \"speedup_vs_naive\": {:.3}, \"memory_bytes\": {}}}{}",
            r.keys, r.mode, r.tuples, r.tuples_per_sec, r.speedup_vs_naive, r.memory_bytes, comma
        )
        .unwrap();
    }
    writeln!(f, "  ],").unwrap();
    writeln!(f, "  \"watermark_latency\": [").unwrap();
    for (i, r) in wm.iter().enumerate() {
        let comma = if i + 1 == wm.len() { "" } else { "," };
        writeln!(
            f,
            "    {{\"idle_keys\": {}, \"mode\": \"{}\", \"us_per_watermark\": {:.2}}}{}",
            r.idle_keys, r.mode, r.us_per_watermark, comma
        )
        .unwrap();
    }
    writeln!(f, "  ]").unwrap();
    j.finish();
}
