//! Figure 8: throughput of in-order processing with context-free windows,
//! as the number of concurrent windows grows from 1 to 1000.
//!
//! Workload (paper Section 6.2.1): concurrent tumbling window queries with
//! lengths equally distributed from 1 to 20 seconds over the football
//! stream; sum aggregation. Expected shape: all three slicing techniques
//! (general slicing, Pairs, Cutty) process millions of tuples/s with
//! near-constant throughput, while Buckets and Tuple Buffer degrade
//! linearly with the window count and Aggregate Trees sit orders of
//! magnitude below.
//!
//! Run: `cargo run --release -p gss-bench --bin fig8`

use gss_aggregates::Sum;
use gss_bench::{
    as_elements, build, concurrent_tumbling_queries, fmt_tput, run, Output, Technique,
};
use gss_core::StreamOrder;
use gss_data::{FootballConfig, FootballGenerator};

fn scale() -> f64 {
    std::env::var("GSS_SCALE").ok().and_then(|s| s.parse().ok()).unwrap_or(1.0)
}

fn main() {
    let base = (1_000_000.0 * scale()) as usize;
    let mut gen = FootballGenerator::new(FootballConfig::default());
    let tuples = gen.take(base);
    let elements = as_elements(&tuples);

    let techniques = [
        Technique::LazySlicing,
        Technique::EagerSlicing,
        Technique::Pairs,
        Technique::Cutty,
        Technique::Buckets,
        Technique::TupleBuffer,
        Technique::AggregateTree,
    ];
    let window_counts = [1usize, 5, 10, 50, 100, 500, 1000];

    let mut out = Output::new("fig8", &["technique", "concurrent_windows", "tuples_per_sec"]);
    out.print_header();
    for tech in techniques {
        for &n in &window_counts {
            // Cap tuple counts so O(windows)-per-tuple baselines finish.
            let cap = match tech {
                Technique::Buckets => (base / 5).min(8_000_000 / n).max(20_000),
                Technique::TupleBuffer => (base / 5).min(4_000_000 / n).max(10_000),
                Technique::AggregateTree => 200_000,
                _ => base,
            };
            let elems = gss_bench::truncate_elements(&elements, cap);
            let queries = concurrent_tumbling_queries(n);
            let mut agg = build(tech, Sum, &queries, StreamOrder::InOrder, 0);
            let report = run(agg.as_mut(), &elems);
            out.row(&[
                tech.name().to_string(),
                n.to_string(),
                format!("{:.0}", report.throughput()),
            ]);
            eprintln!(
                "  {} @ {} windows: {} tuples/s ({} results)",
                tech.name(),
                n,
                fmt_tput(report.throughput()),
                report.results
            );
        }
    }
    out.finish();
}
