//! Intra-query parallel slicing: the two-stage `run_parallel` path
//! (worker-local slice pre-aggregation + combining merge stage) against
//! one sequential `WindowOperator` on the same logical stream.
//!
//! Workload: sliding-window sum (1 s length, 250 ms slide) over an
//! in-order stream with watermarks every second lagging the allowed
//! lateness — the eligible case the parallel path targets. The scaling
//! curve sweeps worker counts {1, 2, 4, (8)} for lazy and eager stores at
//! driver batch sizes {1, 64, 512}; every parallel run's final window
//! results are asserted equal to the sequential run's.
//!
//! Speedup is bounded by physical cores: the JSON records the machine's
//! core count, and on a single-core host the curve is flat-to-declining
//! by construction (the workers time-slice one CPU while paying channel
//! overhead).
//!
//! Writes `target/experiments/par.csv` and `BENCH_par.json` at the repo
//! root.
//!
//! Run: `cargo run --release -p gss-bench --bin par`

use std::collections::BTreeMap;
use std::io::Write as _;
use std::time::Instant;

use gss_aggregates::Sum;
use gss_bench::{fmt_tput, machine_cores, BenchJson, Output};
use gss_core::{
    OperatorConfig, QueryId, StorePolicy, StreamElement, Time, WindowFunction, WindowOperator,
    WindowResult,
};
use gss_stream::{run_parallel, PipelineConfig};
use gss_windows::SlidingWindow;

const WINDOW_LEN: i64 = 1_000;
const WINDOW_SLIDE: i64 = 250;
const LATENESS: i64 = 500;

fn scale() -> f64 {
    std::env::var("GSS_SCALE").ok().and_then(|s| s.parse().ok()).unwrap_or(1.0)
}

fn windows() -> Vec<Box<dyn WindowFunction>> {
    vec![Box::new(SlidingWindow::new(WINDOW_LEN, WINDOW_SLIDE))]
}

fn op_cfg(policy: StorePolicy) -> OperatorConfig {
    OperatorConfig::out_of_order(LATENESS).with_policy(policy)
}

/// In-order stream: one record per millisecond, watermarks every second
/// lagging [`LATENESS`], final flush.
fn make_elements(n: usize) -> Vec<StreamElement<i64>> {
    let mut v = Vec::with_capacity(n + n / 1_000 + 2);
    for i in 0..n {
        let ts = i as Time;
        v.push(StreamElement::Record { ts, value: (i % 101) as i64 - 50 });
        if i % 1_000 == 999 {
            v.push(StreamElement::Watermark(ts - LATENESS));
        }
    }
    v.push(StreamElement::Watermark(i64::MAX - 1));
    v
}

type Finals = BTreeMap<(QueryId, Time, Time), i64>;

fn finals<'a>(results: impl Iterator<Item = &'a WindowResult<i64>>) -> Finals {
    let mut map = Finals::new();
    for r in results {
        map.insert((r.query, r.range.start, r.range.end), r.value);
    }
    map
}

struct Run {
    tuples: u64,
    seconds: f64,
    finals: Finals,
    send_wait_p99_ns: u64,
}

impl Run {
    fn throughput(&self) -> f64 {
        self.tuples as f64 / self.seconds.max(1e-9)
    }
}

/// Sequential baseline: one operator on the calling thread, fed in chunks
/// of `batch` through the batched ingestion path — the strongest
/// single-thread configuration, so speedups are honest.
fn run_sequential(elements: &[StreamElement<i64>], policy: StorePolicy, batch: usize) -> Run {
    let mut op = WindowOperator::new(Sum, op_cfg(policy));
    for w in &windows() {
        op.add_query(w.clone_box()).unwrap();
    }
    let mut out: Vec<WindowResult<i64>> = Vec::new();
    let mut results: Vec<WindowResult<i64>> = Vec::new();
    let mut buf: Vec<(Time, i64)> = Vec::with_capacity(batch);
    let mut tuples = 0u64;
    let start = Instant::now();
    for e in elements {
        match e {
            StreamElement::Record { ts, value } => {
                buf.push((*ts, *value));
                if buf.len() >= batch {
                    tuples += buf.len() as u64;
                    op.process_batch_tuples(&buf, &mut out);
                    buf.clear();
                }
            }
            StreamElement::Watermark(wm) => {
                if !buf.is_empty() {
                    tuples += buf.len() as u64;
                    op.process_batch_tuples(&buf, &mut out);
                    buf.clear();
                }
                op.process_watermark(*wm, &mut out);
            }
            StreamElement::Punctuation(_) => {}
        }
        results.append(&mut out);
    }
    let seconds = start.elapsed().as_secs_f64();
    Run { tuples, seconds, finals: finals(results.iter()), send_wait_p99_ns: 0 }
}

fn run_par(
    elements: &[StreamElement<i64>],
    policy: StorePolicy,
    batch: usize,
    workers: usize,
) -> Run {
    let report = run_parallel(
        elements.iter().cloned(),
        PipelineConfig::with_parallelism(workers).with_batch_size(batch),
        Sum,
        windows(),
        op_cfg(policy),
    );
    assert_eq!(report.parallel_workers, workers, "workload must take the parallel path");
    Run {
        tuples: report.records,
        seconds: report.elapsed.as_secs_f64(),
        finals: finals(report.results.iter().map(|(_, r)| r)),
        send_wait_p99_ns: report.send_wait.quantile(0.99).as_nanos() as u64,
    }
}

/// Best-of-`reps`; results must agree across repetitions.
fn best(reps: usize, run: impl Fn() -> Run) -> Run {
    let mut best: Option<Run> = None;
    for _ in 0..reps {
        let r = run();
        if let Some(b) = &best {
            assert_eq!(r.finals, b.finals, "results diverged across repetitions");
        }
        if best.as_ref().is_none_or(|b| r.seconds < b.seconds) {
            best = Some(r);
        }
    }
    best.expect("at least one repetition")
}

struct Row {
    policy: &'static str,
    batch: usize,
    workers: usize, // 0 = sequential baseline
    tuples_per_sec: f64,
    speedup_vs_seq: f64,
    send_wait_p99_ns: u64,
}

fn main() {
    let s = scale();
    let n = (2_000_000.0 * s).max(10_000.0) as usize;
    let reps = if s < 0.1 { 2 } else { 3 };
    let cores = machine_cores();
    let mut worker_counts = vec![1usize, 2, 4];
    if cores >= 8 {
        worker_counts.push(8);
    }
    let elements = make_elements(n);
    eprintln!("{n} records, {cores} cores, workers {worker_counts:?}, reps {reps}");

    let mut out = Output::new(
        "par",
        &["policy", "batch", "workers", "tuples_per_sec", "speedup_vs_seq", "send_wait_p99_ns"],
    );
    out.print_header();
    let mut rows: Vec<Row> = Vec::new();

    for (policy, pname) in [(StorePolicy::Lazy, "lazy"), (StorePolicy::Eager, "eager")] {
        for batch in [1usize, 64, 512] {
            let seq = best(reps, || run_sequential(&elements, policy, batch));
            assert!(!seq.finals.is_empty(), "no windows emitted");
            let mut emit = |workers: usize, r: &Run, speedup: f64| {
                out.row(&[
                    pname.to_string(),
                    batch.to_string(),
                    workers.to_string(),
                    format!("{:.0}", r.throughput()),
                    format!("{speedup:.2}"),
                    r.send_wait_p99_ns.to_string(),
                ]);
                eprintln!(
                    "  {pname} batch={batch} workers={workers}: {} tuples/s ({speedup:.2}x seq)",
                    fmt_tput(r.throughput())
                );
                rows.push(Row {
                    policy: pname,
                    batch,
                    workers,
                    tuples_per_sec: r.throughput(),
                    speedup_vs_seq: speedup,
                    send_wait_p99_ns: r.send_wait_p99_ns,
                });
            };
            emit(0, &seq, 1.0);
            for &w in &worker_counts {
                let par = best(reps, || run_par(&elements, policy, batch, w));
                assert_eq!(
                    par.finals, seq.finals,
                    "parallel finals diverged ({pname}, batch {batch}, {w} workers)"
                );
                emit(w, &par, par.throughput() / seq.throughput().max(1e-9));
            }
        }
    }

    out.finish();
    write_json(n, &rows);
}

/// Writes `BENCH_par.json` at the repo root via the shared
/// [`BenchJson`] preamble (`workload` + `cores`).
fn write_json(n: usize, rows: &[Row]) {
    let mut j = BenchJson::create(
        "par",
        &format!(
            "sliding(1s, 250ms) sum, in-order stream of {n} records, watermarks \
             every 1s lagging 500ms; two-stage run_parallel vs one sequential operator \
             (workers=0), best of N reps, final window results asserted equal"
        ),
    );
    let f = j.file();
    writeln!(f, "  \"rows\": [").unwrap();
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 == rows.len() { "" } else { "," };
        writeln!(
            f,
            "    {{\"policy\": \"{}\", \"batch\": {}, \"workers\": {}, \"tuples_per_sec\": \
             {:.0}, \"speedup_vs_seq\": {:.3}, \"send_wait_p99_ns\": {}}}{}",
            r.policy,
            r.batch,
            r.workers,
            r.tuples_per_sec,
            r.speedup_vs_seq,
            r.send_wait_p99_ns,
            comma
        )
        .unwrap();
    }
    writeln!(f, "  ]").unwrap();
    j.finish();
}
