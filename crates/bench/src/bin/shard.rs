//! Key-sharded multi-core execution: `run_sharded_keyed` (hash-
//! partitioned keyed operators behind the epoch barrier) against one
//! single-threaded `KeyedWindowOperator` on the same logical stream.
//!
//! Workload: sliding-window sum (1 s length, 250 ms slide) over an
//! in-order keyed stream round-robining across 10k keys, watermarks
//! every second lagging the allowed lateness, batched ingestion. The
//! scaling curve sweeps shard counts {1, 2, 4, (8)}; every sharded
//! run's emissions are asserted identical to the single-threaded
//! baseline's (the per-epoch stable key sort makes the sharded output
//! deterministic, so plain equality holds).
//!
//! Speedup is bounded by physical cores: the JSON records the machine's
//! core count, and on a single-core host the curve measures pure
//! protocol overhead (router + channels + merge) — flat-to-declining by
//! construction, which is the honest number to pin (EXPERIMENTS.md).
//!
//! Writes `target/experiments/shard.csv` and `BENCH_shard.json` at the
//! repo root.
//!
//! Run: `cargo run --release -p gss-bench --bin shard`

use std::io::Write as _;
use std::time::Instant;

use gss_aggregates::Sum;
use gss_bench::{fmt_tput, machine_cores, BenchJson, Output};
use gss_core::{
    KeyedConfig, KeyedWindowOperator, PerKey, StreamElement, Time, WindowAggregator, WindowResult,
};
use gss_stream::{run_sharded_keyed, PipelineConfig};
use gss_windows::SlidingWindow;

const WINDOW_LEN: i64 = 1_000;
const WINDOW_SLIDE: i64 = 250;
const LATENESS: i64 = 500;
const KEYS: u64 = 10_000;
const BATCH: usize = 512;

fn scale() -> f64 {
    std::env::var("GSS_SCALE").ok().and_then(|s| s.parse().ok()).unwrap_or(1.0)
}

fn shared_op() -> Box<dyn WindowAggregator<PerKey<Sum>>> {
    let windows: Vec<Box<dyn gss_core::WindowFunction>> =
        vec![Box::new(SlidingWindow::new(WINDOW_LEN, WINDOW_SLIDE))];
    let op = KeyedWindowOperator::new(
        Sum,
        windows,
        KeyedConfig::default().with_allowed_lateness(LATENESS),
    );
    assert!(op.is_shared(), "sliding sum must take the shared path");
    Box::new(op)
}

/// In-order keyed stream: one record per millisecond round-robining over
/// [`KEYS`] keys, watermarks every second lagging [`LATENESS`], final
/// flush.
fn make_elements(n: usize) -> Vec<StreamElement<(u64, i64)>> {
    let mut v: Vec<StreamElement<(u64, i64)>> = Vec::with_capacity(n + n / 1_000 + 2);
    for i in 0..n {
        let ts = i as Time;
        v.push(StreamElement::Record { ts, value: (i as u64 % KEYS, (i % 101) as i64 - 50) });
        if i % 1_000 == 999 {
            v.push(StreamElement::Watermark(ts - LATENESS));
        }
    }
    v.push(StreamElement::Watermark(i64::MAX - 1));
    v
}

/// `(key, start, end, value, is_update)` rows in emission order.
type Rows = Vec<(u64, Time, Time, i64, bool)>;

fn rows<'a>(results: impl Iterator<Item = &'a WindowResult<(u64, i64)>>) -> Rows {
    results.map(|r| (r.value.0, r.range.start, r.range.end, r.value.1, r.is_update)).collect()
}

struct Run {
    tuples: u64,
    seconds: f64,
    /// Sorted fingerprint (the sharded path's per-epoch ordering differs
    /// from the baseline's emission order only across keys).
    fingerprint: Rows,
    send_wait_p99_ns: u64,
}

impl Run {
    fn throughput(&self) -> f64 {
        self.tuples as f64 / self.seconds.max(1e-9)
    }
}

/// Single-threaded baseline: one keyed operator on the calling thread,
/// fed through the batched ingestion path — the strongest single-thread
/// configuration, so speedups are honest.
fn run_baseline(elements: &[StreamElement<(u64, i64)>]) -> Run {
    let mut op = shared_op();
    let mut out: Vec<WindowResult<(u64, i64)>> = Vec::new();
    let mut results: Vec<WindowResult<(u64, i64)>> = Vec::new();
    let mut buf: Vec<(Time, (u64, i64))> = Vec::with_capacity(BATCH);
    let mut tuples = 0u64;
    let start = Instant::now();
    for e in elements {
        match e {
            StreamElement::Record { ts, value } => {
                buf.push((*ts, *value));
                if buf.len() >= BATCH {
                    tuples += buf.len() as u64;
                    op.process_batch(&buf, &mut out);
                    buf.clear();
                }
            }
            StreamElement::Watermark(wm) => {
                if !buf.is_empty() {
                    tuples += buf.len() as u64;
                    op.process_batch(&buf, &mut out);
                    buf.clear();
                }
                op.on_watermark(*wm, &mut out);
            }
            StreamElement::Punctuation(_) => {}
        }
        results.append(&mut out);
    }
    let seconds = start.elapsed().as_secs_f64();
    let mut fingerprint = rows(results.iter());
    fingerprint.sort_unstable();
    Run { tuples, seconds, fingerprint, send_wait_p99_ns: 0 }
}

fn run_sharded(elements: &[StreamElement<(u64, i64)>], shards: usize) -> Run {
    let report = run_sharded_keyed(
        elements.iter().cloned(),
        PipelineConfig::with_parallelism(shards).with_batch_size(BATCH),
        |_shard| shared_op(),
    );
    assert_eq!(report.shards, shards, "report must record the shard count");
    let mut fingerprint = rows(report.results.iter().map(|(_, r)| r));
    fingerprint.sort_unstable();
    Run {
        tuples: report.records,
        seconds: report.elapsed.as_secs_f64(),
        fingerprint,
        send_wait_p99_ns: report.send_wait.quantile(0.99).as_nanos() as u64,
    }
}

/// Best-of-`reps`; results must agree across repetitions.
fn best(reps: usize, run: impl Fn() -> Run) -> Run {
    let mut best: Option<Run> = None;
    for _ in 0..reps {
        let r = run();
        if let Some(b) = &best {
            assert_eq!(r.fingerprint, b.fingerprint, "results diverged across repetitions");
        }
        if best.as_ref().is_none_or(|b| r.seconds < b.seconds) {
            best = Some(r);
        }
    }
    best.expect("at least one repetition")
}

struct Row {
    shards: usize, // 0 = single-threaded baseline
    tuples_per_sec: f64,
    speedup_vs_seq: f64,
    send_wait_p99_ns: u64,
}

fn main() {
    let s = scale();
    let n = (2_000_000.0 * s).max(10_000.0) as usize;
    let reps = if s < 0.1 { 2 } else { 3 };
    let cores = machine_cores();
    let mut shard_counts = vec![1usize, 2, 4];
    if cores >= 8 {
        shard_counts.push(8);
    }
    let elements = make_elements(n);
    eprintln!("{n} records, {KEYS} keys, {cores} cores, shards {shard_counts:?}, reps {reps}");

    let mut out =
        Output::new("shard", &["shards", "tuples_per_sec", "speedup_vs_seq", "send_wait_p99_ns"]);
    out.print_header();
    let mut json_rows: Vec<Row> = Vec::new();

    let seq = best(reps, || run_baseline(&elements));
    assert!(!seq.fingerprint.is_empty(), "no windows emitted");
    let mut emit = |shards: usize, r: &Run, speedup: f64| {
        out.row(&[
            shards.to_string(),
            format!("{:.0}", r.throughput()),
            format!("{speedup:.2}"),
            r.send_wait_p99_ns.to_string(),
        ]);
        eprintln!(
            "  shards={shards}: {} tuples/s ({speedup:.2}x single-threaded)",
            fmt_tput(r.throughput())
        );
        json_rows.push(Row {
            shards,
            tuples_per_sec: r.throughput(),
            speedup_vs_seq: speedup,
            send_wait_p99_ns: r.send_wait_p99_ns,
        });
    };
    emit(0, &seq, 1.0);
    for &shards in &shard_counts {
        let sharded = best(reps, || run_sharded(&elements, shards));
        assert_eq!(
            sharded.fingerprint, seq.fingerprint,
            "sharded emissions diverged from the single-threaded baseline at {shards} shards"
        );
        emit(shards, &sharded, sharded.throughput() / seq.throughput().max(1e-9));
    }

    out.finish();
    write_json(n, &json_rows);
}

/// Writes `BENCH_shard.json` at the repo root via the shared
/// [`BenchJson`] preamble (`workload` + `cores`).
fn write_json(n: usize, rows: &[Row]) {
    let mut j = BenchJson::create(
        "shard",
        &format!(
            "sliding(1s, 250ms) sum, in-order keyed stream of {n} records over {KEYS} keys, \
             watermarks every 1s lagging 500ms, batch {BATCH}; run_sharded_keyed vs one \
             single-threaded KeyedWindowOperator (shards=0), best of N reps, emissions \
             asserted identical"
        ),
    );
    let f = j.file();
    writeln!(
        f,
        "  \"note\": \"speedup is bounded by cores: with cores=1 every shard time-slices one \
         CPU, so the curve measures router+channel+merge protocol overhead, not scaling\","
    )
    .unwrap();
    writeln!(f, "  \"rows\": [").unwrap();
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 == rows.len() { "" } else { "," };
        writeln!(
            f,
            "    {{\"shards\": {}, \"tuples_per_sec\": {:.0}, \"speedup_vs_seq\": {:.3}, \
             \"send_wait_p99_ns\": {}}}{}",
            r.shards, r.tuples_per_sec, r.speedup_vs_seq, r.send_wait_p99_ns, comma
        )
        .unwrap();
    }
    writeln!(f, "  ]").unwrap();
    j.finish();
}
