//! Figure 13: impact of the aggregation function on general slicing's
//! throughput, for time-based vs. count-based windows.
//!
//! Setup (paper Section 6.3.2): 20 concurrent windows, 20 % out-of-order
//! tuples with 0–2 s delays; the Tangwongsan et al. function set plus
//! median and 90-percentile, plus a sum that hides its invertibility.
//! Expected shape: all algebraic/distributive functions run at similar
//! high throughput on time windows; on count windows the not-invertible
//! "sum w/o invert" collapses (every shift recomputes) while min/max
//! families barely degrade (most removals don't touch the extremum);
//! holistic functions sit far below everything else.
//!
//! Run: `cargo run --release -p gss-bench --bin fig13`

use std::time::Instant;

use gss_aggregates::{
    ArgMax, ArgMin, Avg, CountAgg, GeometricMean, Max, MaxCount, Median, Min, MinCount, Percentile,
    PopulationStdDev, SampleStdDev, Sum, SumNoInvert, M4,
};
use gss_bench::Output;
use gss_core::operator::{OperatorConfig, WindowOperator};
use gss_core::{AggregateFunction, StreamElement, StreamOrder, Time};
use gss_data::{make_out_of_order, with_watermarks, FootballConfig, FootballGenerator, OooConfig};
use gss_windows::{CountTumblingWindow, TumblingWindow};

fn scale() -> f64 {
    std::env::var("GSS_SCALE").ok().and_then(|s| s.parse().ok()).unwrap_or(1.0)
}

/// Drives general slicing with function `f` over the prepared arrival
/// stream, mapping each base tuple into the function's input type.
fn run_function<A: AggregateFunction>(
    f: A,
    elements: &[StreamElement<i64>],
    count_based: bool,
    map: impl Fn(Time, i64) -> A::Input,
) -> f64 {
    let mut op = WindowOperator::new(
        f,
        OperatorConfig {
            order: StreamOrder::OutOfOrder,
            allowed_lateness: 2_000,
            ..Default::default()
        },
    );
    for i in 0..20 {
        if count_based {
            op.add_query(Box::new(CountTumblingWindow::new((i + 1) * 2_000))).unwrap();
        } else {
            op.add_query(Box::new(TumblingWindow::new((i as i64 + 1) * 1_000))).unwrap();
        }
    }
    let mut out = Vec::new();
    let mut tuples = 0u64;
    let start = Instant::now();
    for e in elements {
        match e {
            StreamElement::Record { ts, value } => {
                tuples += 1;
                op.process_tuple(*ts, map(*ts, *value), &mut out);
            }
            StreamElement::Watermark(wm) => op.process_watermark(*wm, &mut out),
            StreamElement::Punctuation(_) => {}
        }
        out.clear();
    }
    tuples as f64 / start.elapsed().as_secs_f64()
}

fn main() {
    let base = (300_000.0 * scale()) as usize;
    let tuples = FootballGenerator::new(FootballConfig::default()).take(base);
    let arrivals = make_out_of_order(
        &tuples,
        OooConfig { fraction_percent: 20, max_delay: 2_000, ..Default::default() },
    );
    let elements: Vec<StreamElement<i64>> = with_watermarks(&arrivals, 500, 2_000);
    // Holistic functions over count windows recompute large slices; cap.
    let holistic_elements = gss_bench::truncate_elements(&elements, base.min(60_000));

    let mut out = Output::new("fig13", &["function", "measure", "tuples_per_sec"]);
    out.print_header();

    for count_based in [false, true] {
        let measure = if count_based { "count" } else { "time" };
        let mut rows: Vec<(String, f64)> = Vec::new();
        macro_rules! bench {
            ($name:expr, $f:expr, $elems:expr, $map:expr) => {{
                let tps = run_function($f, $elems, count_based, $map);
                eprintln!("  {} ({measure}): {:.0} tuples/s", $name, tps);
                rows.push(($name.to_string(), tps));
            }};
        }

        bench!("count", CountAgg, &elements, |_, v| v);
        bench!("sum", Sum, &elements, |_, v| v);
        bench!("sum w/o invert", SumNoInvert, &elements, |_, v| v);
        bench!("avg", Avg, &elements, |_, v| v);
        bench!("min", Min, &elements, |_, v| v);
        bench!("max", Max, &elements, |_, v| v);
        bench!("min-count", MinCount, &elements, |_, v| v);
        bench!("max-count", MaxCount, &elements, |_, v| v);
        bench!("arg-min", ArgMin, &elements, |ts, v| (v, ts));
        bench!("arg-max", ArgMax, &elements, |ts, v| (v, ts));
        bench!("geo-mean", GeometricMean, &elements, |_, v| v);
        bench!("sample-stddev", SampleStdDev, &elements, |_, v| v);
        bench!("pop-stddev", PopulationStdDev, &elements, |_, v| v);
        bench!("m4", M4, &elements, |ts, v| (ts, v));
        bench!("median", Median, &holistic_elements, |_, v| v);
        bench!("p90", Percentile::p90(), &holistic_elements, |_, v| v);

        for (name, tps) in rows {
            out.row(&[name, measure.to_string(), format!("{tps:.0}")]);
        }
    }
    out.finish();
}
