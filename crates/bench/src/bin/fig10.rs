//! Figure 10: memory consumption on unordered streams.
//!
//! Four plots (paper Section 6.2.3):
//!   (a) time-based windows, varying slices (50 k tuples fixed)
//!   (b) time-based windows, varying tuples (500 slices fixed)
//!   (c) count-based windows, varying slices (50 k tuples fixed)
//!   (d) count-based windows, varying tuples (500 slices fixed)
//!
//! Expected shape: with time-based windows (tuples droppable) slicing and
//! buckets depend only on the slice/window count, independent of the tuple
//! count; tuple buffer and aggregate tree scale with tuples. With
//! count-based windows every technique must keep tuples, so all curves
//! become linear and parallel in the tuple count; buckets additionally
//! replicate tuples across overlapping windows.
//!
//! Run: `cargo run --release -p gss-bench --bin fig10`

use gss_aggregates::Sum;
use gss_bench::{as_elements, build, run, Output, QuerySpec, Technique};
use gss_core::{StreamOrder, Time};

/// Feeds `n_tuples` uniformly over a span that yields ~`n_slices` slices
/// for a tumbling window of `span / n_slices`, with no watermark so
/// nothing is evicted; reports operator state bytes.
fn measure(tech: Technique, count_based: bool, n_slices: usize, n_tuples: usize) -> usize {
    let span: Time = 1_000_000;
    let step = (span as usize / n_tuples).max(1) as Time;
    let tuples: Vec<(Time, i64)> = (0..n_tuples as i64).map(|i| (i * step, i)).collect();
    let query = if count_based {
        QuerySpec::CountTumbling((n_tuples / n_slices).max(1) as u64)
    } else {
        QuerySpec::Tumbling((span / n_slices as Time).max(1))
    };
    let mut agg = build(tech, Sum, &[query], StreamOrder::OutOfOrder, span * 2);
    let report = run(agg.as_mut(), &as_elements(&tuples));
    report.memory_bytes
}

fn main() {
    let techniques = |count_based: bool| {
        if count_based {
            vec![
                Technique::LazySlicing,
                Technique::TupleBuckets,
                Technique::TupleBuffer,
                Technique::AggregateTree,
            ]
        } else {
            vec![
                Technique::LazySlicing,
                Technique::Buckets,
                Technique::TupleBuffer,
                Technique::AggregateTree,
            ]
        }
    };

    let mut out = Output::new("fig10", &["plot", "technique", "slices", "tuples", "bytes"]);
    out.print_header();

    for (plot, count_based, vary_slices) in
        [("10a", false, true), ("10b", false, false), ("10c", true, true), ("10d", true, false)]
    {
        for tech in techniques(count_based) {
            if vary_slices {
                for n_slices in [10usize, 50, 100, 500, 1_000, 5_000, 10_000] {
                    let bytes = measure(tech, count_based, n_slices, 50_000);
                    out.row(&[
                        plot.into(),
                        tech.name().into(),
                        n_slices.to_string(),
                        "50000".into(),
                        bytes.to_string(),
                    ]);
                }
            } else {
                for n_tuples in [1_000usize, 5_000, 10_000, 50_000, 100_000, 500_000, 1_000_000] {
                    // Buckets with huge overlap get slow; cap for sanity.
                    if matches!(tech, Technique::Buckets | Technique::TupleBuckets)
                        && n_tuples > 500_000
                    {
                        continue;
                    }
                    let bytes = measure(tech, count_based, 500, n_tuples);
                    out.row(&[
                        plot.into(),
                        tech.name().into(),
                        "500".into(),
                        n_tuples.to_string(),
                        bytes.to_string(),
                    ]);
                }
            }
        }
    }
    out.finish();
}
