//! Figure 16: impact of the window measure — time-based vs. count-based
//! windows as the number of concurrent windows grows.
//!
//! Setup (paper Section 6.3.4): 20 % out-of-order tuples with 0–2 s
//! delays, sum aggregation. Expected shape: time-window throughput is
//! independent of the window count; count-window throughput holds up to a
//! few dozen windows (out-of-order tuples still land in the open slice)
//! and then decays as slices shrink and the shift cascades lengthen —
//! while remaining an order of magnitude above the tuple buffer, the
//! fastest alternative for count windows.
//!
//! Run: `cargo run --release -p gss-bench --bin fig16`

use gss_aggregates::Sum;
use gss_bench::{build, fmt_tput, run, truncate_elements, Output, QuerySpec, Technique};
use gss_core::{StreamElement, StreamOrder};
use gss_data::{make_out_of_order, with_watermarks, FootballConfig, FootballGenerator, OooConfig};

fn scale() -> f64 {
    std::env::var("GSS_SCALE").ok().and_then(|s| s.parse().ok()).unwrap_or(1.0)
}

fn main() {
    let base = (300_000.0 * scale()) as usize;
    let tuples = FootballGenerator::new(FootballConfig::default()).take(base);
    let arrivals = make_out_of_order(
        &tuples,
        OooConfig { fraction_percent: 20, max_delay: 2_000, ..Default::default() },
    );
    let elements: Vec<StreamElement<i64>> = with_watermarks(&arrivals, 500, 2_000);
    let window_counts = [1usize, 5, 10, 20, 40, 100, 500, 1000];

    let mut out = Output::new("fig16", &["series", "concurrent_windows", "tuples_per_sec"]);
    out.print_header();

    for &n in &window_counts {
        // Time measure: n tumbling queries, lengths 1-20 s.
        let time_queries: Vec<QuerySpec> =
            (0..n).map(|i| QuerySpec::Tumbling(((i % 20) as i64 + 1) * 1_000)).collect();
        let mut agg =
            build(Technique::LazySlicing, Sum, &time_queries, StreamOrder::OutOfOrder, 2_000);
        let report = run(agg.as_mut(), &elements);
        out.row(&[
            "slicing time-based".into(),
            n.to_string(),
            format!("{:.0}", report.throughput()),
        ]);
        eprintln!("  time {n}: {}", fmt_tput(report.throughput()));

        // Count measure: n count-tumbling queries, 2k-40k tuples (the 1-20 s
        // equivalents at 2000 Hz).
        let count_queries: Vec<QuerySpec> =
            (0..n).map(|i| QuerySpec::CountTumbling(((i % 20) as u64 + 1) * 2_000)).collect();
        let cap = if n > 100 { base.min(60_000) } else { base };
        let elems = truncate_elements(&elements, cap);
        let mut agg =
            build(Technique::LazySlicing, Sum, &count_queries, StreamOrder::OutOfOrder, 2_000);
        let report = run(agg.as_mut(), &elems);
        out.row(&[
            "slicing count-based".into(),
            n.to_string(),
            format!("{:.0}", report.throughput()),
        ]);
        eprintln!("  count {n}: {}", fmt_tput(report.throughput()));

        // Tuple buffer on count windows — the fastest alternative.
        let cap = base.min(2_000_000 / n).max(5_000);
        let elems = truncate_elements(&elements, cap);
        let mut agg =
            build(Technique::TupleBuffer, Sum, &count_queries, StreamOrder::OutOfOrder, 2_000);
        let report = run(agg.as_mut(), &elems);
        out.row(&[
            "tuple buffer count-based".into(),
            n.to_string(),
            format!("{:.0}", report.throughput()),
        ]);
        eprintln!("  buffer count {n}: {}", fmt_tput(report.throughput()));
    }
    out.finish();
}
