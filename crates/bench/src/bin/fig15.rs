//! Figure 15: processing time for recomputing slice aggregates — the cost
//! of the split operation.
//!
//! Context-aware windows can require splitting a slice, which recomputes
//! both halves from stored tuples (paper Sections 5.2 / 6.3.3). Expected
//! shape: linear in the number of tuples in the slice; the holistic median
//! costs a constant factor more than the algebraic sum.
//!
//! Run: `cargo run --release -p gss-bench --bin fig15`

use std::time::Instant;

use gss_aggregates::{Median, Sum};
use gss_bench::Output;
use gss_core::{AggregateFunction, Range, Slice, Time};

/// Builds a slice with `n` stored tuples and measures a split through the
/// middle (both halves recomputed), median of `reps` runs, nanoseconds.
fn split_cost<A: AggregateFunction<Input = i64> + Copy>(f: A, n: usize, reps: usize) -> f64 {
    let mut samples = Vec::with_capacity(reps);
    for _ in 0..reps {
        let mut slice: Slice<A> = Slice::new(Range::new(0, n as Time), true);
        for i in 0..n as i64 {
            slice.add_in_order(&f, i, i % 97);
        }
        let t = Instant::now();
        let right = slice.split(&f, n as Time / 2);
        std::hint::black_box(&right);
        samples.push(t.elapsed().as_nanos() as f64);
    }
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn main() {
    let mut out = Output::new("fig15", &["aggregation", "tuples_in_slice", "split_ns"]);
    out.print_header();
    for n in [100usize, 1_000, 10_000, 100_000, 1_000_000] {
        let reps = (1_000_000 / n).clamp(5, 101);
        let sum_ns = split_cost(Sum, n, reps);
        let median_ns = split_cost(Median, n, reps);
        out.row(&["sum".into(), n.to_string(), format!("{sum_ns:.0}")]);
        out.row(&["median".into(), n.to_string(), format!("{median_ns:.0}")]);
    }
    out.finish();
}
