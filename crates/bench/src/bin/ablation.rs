//! Ablation study: what each adaptive decision of general stream slicing
//! is worth (DESIGN.md §6). Not a paper figure — it quantifies the design
//! choices the paper motivates qualitatively:
//!
//! 1. **Tuple storage** (Figure 4): adaptive drop-when-possible vs. always
//!    keeping tuples (what a naive "general" operator would do).
//! 2. **Start-only slicing** (Section 5.3 Step 1): in-order streams slice
//!    only at window starts vs. the out-of-order edge set (starts + ends).
//! 3. **Lazy vs. eager stores**: throughput cost of maintaining the
//!    FlatFAT index that buys Figure 11's microsecond latencies.
//! 4. **Invertibility** (Figure 6): ⊖-based removal vs. recomputation on
//!    count windows with out-of-order tuples.
//!
//! Run: `cargo run --release -p gss-bench --bin ablation`

use gss_aggregates::{Median, MedianNoRle, Sum, SumNoInvert};
use gss_bench::{as_elements, fmt_tput, run, truncate_elements, Output};
use gss_core::operator::{OperatorConfig, WindowOperator};
use gss_core::{AggregateFunction, StorePolicy, StreamElement, StreamOrder};
use gss_data::{make_out_of_order, with_watermarks, FootballConfig, FootballGenerator, OooConfig};
use gss_data::{MachineConfig, MachineGenerator};
use gss_windows::{CountTumblingWindow, SlidingWindow, TumblingWindow};

fn scale() -> f64 {
    std::env::var("GSS_SCALE").ok().and_then(|s| s.parse().ok()).unwrap_or(1.0)
}

fn operator<A: AggregateFunction>(
    f: A,
    cfg: OperatorConfig,
    n_windows: usize,
) -> WindowOperator<A> {
    let mut op = WindowOperator::new(f, cfg);
    for i in 0..n_windows {
        op.add_query(Box::new(TumblingWindow::new(((i % 20) as i64 + 1) * 1_000))).unwrap();
    }
    op
}

fn main() {
    let base = (500_000.0 * scale()) as usize;
    let tuples = FootballGenerator::new(FootballConfig::default()).take(base);
    let in_order = as_elements(&tuples);
    let arrivals = make_out_of_order(
        &tuples,
        OooConfig { fraction_percent: 20, max_delay: 2_000, ..Default::default() },
    );
    let ooo: Vec<StreamElement<i64>> = with_watermarks(&arrivals, 500, 2_000);

    let mut out =
        Output::new("ablation", &["ablation", "variant", "tuples_per_sec", "memory_bytes"]);
    out.print_header();
    let mut emit = |ablation: &str, variant: &str, r: gss_bench::RunReport| {
        out.row(&[
            ablation.into(),
            variant.into(),
            format!("{:.0}", r.throughput()),
            r.memory_bytes.to_string(),
        ]);
        eprintln!(
            "  {ablation} / {variant}: {} t/s, {} bytes",
            fmt_tput(r.throughput()),
            r.memory_bytes
        );
    };

    // 1. Adaptive tuple storage vs. always-store (in-order CF workload
    //    where the decision logic drops tuples entirely). Memory is
    //    sampled mid-stream via a long window to keep state resident.
    {
        let mk = |force: bool| {
            let cfg = OperatorConfig { force_tuple_storage: force, ..Default::default() };
            let mut op = WindowOperator::new(Sum, cfg);
            op.add_query(Box::new(SlidingWindow::new(20_000, 1_000))).unwrap();
            op
        };
        let mut adaptive = mk(false);
        emit("tuple-storage", "adaptive (drop)", run(&mut adaptive, &in_order));
        let mut forced = mk(true);
        emit("tuple-storage", "forced keep", run(&mut forced, &in_order));
    }

    // 2. Start-only vs. starts+ends slicing on an in-order stream whose
    //    sliding windows have unaligned ends (l = 3.5 s, slide = 1 s:
    //    twice the edges when ends are cut too).
    {
        let mk = |force_ends: bool| {
            let cfg = OperatorConfig { force_end_edges: force_ends, ..Default::default() };
            let mut op = WindowOperator::new(Sum, cfg);
            for i in 0..20i64 {
                op.add_query(Box::new(SlidingWindow::new(i * 500 + 3_500, 1_000))).unwrap();
            }
            op
        };
        let mut starts = mk(false);
        emit("edge-set", "starts only", run(&mut starts, &in_order));
        let mut both = mk(true);
        emit("edge-set", "starts + ends", run(&mut both, &in_order));
    }

    // 3. Lazy vs. eager store on the out-of-order session-free workload.
    for (name, policy) in [("lazy", StorePolicy::Lazy), ("eager", StorePolicy::Eager)] {
        let cfg = OperatorConfig {
            order: StreamOrder::OutOfOrder,
            policy,
            allowed_lateness: 2_000,
            ..Default::default()
        };
        let mut op = operator(Sum, cfg, 20);
        emit("store-policy", name, run(&mut op, &ooo));
    }

    // 4. Invertible vs. non-invertible removal on count windows with
    //    out-of-order tuples (the Figure-6 shift cost).
    {
        let elems = truncate_elements(&ooo, base.min(150_000));
        let cfg = OperatorConfig {
            order: StreamOrder::OutOfOrder,
            allowed_lateness: 2_000,
            ..Default::default()
        };
        let mut with_invert = WindowOperator::new(Sum, cfg);
        with_invert.add_query(Box::new(CountTumblingWindow::new(2_000))).unwrap();
        emit("invertibility", "sum (⊖ removal)", run(&mut with_invert, &elems));
        let mut without = WindowOperator::new(SumNoInvert, cfg);
        without.add_query(Box::new(CountTumblingWindow::new(2_000))).unwrap();
        emit("invertibility", "sum w/o invert (recompute)", run(&mut without, &elems));
    }

    // 5. Sorted-RLE vs. plain sorted slices for holistic aggregation
    //    (paper Section 5.4.1's design choice), on the low-cardinality
    //    machine data where RLE shines.
    {
        let m_tuples = MachineGenerator::new(MachineConfig { rate_hz: 2000, ..Default::default() })
            .take(base.min(100_000));
        let m_elems = as_elements(&m_tuples);
        let cfg = OperatorConfig::default();
        let mut rle = WindowOperator::new(Median, cfg);
        for i in 0..20i64 {
            rle.add_query(Box::new(TumblingWindow::new((i % 20 + 1) * 1_000))).unwrap();
        }
        emit("holistic-encoding", "sorted + RLE", run(&mut rle, &m_elems));
        let mut plain = WindowOperator::new(MedianNoRle, cfg);
        for i in 0..20i64 {
            plain.add_query(Box::new(TumblingWindow::new((i % 20 + 1) * 1_000))).unwrap();
        }
        emit("holistic-encoding", "sorted, no RLE", run(&mut plain, &m_elems));
    }

    out.finish();
}
