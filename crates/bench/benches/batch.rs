//! Microbenchmark for the batched ingestion fast path: per-tuple
//! `process` vs `process_batch` at growing batch sizes, over the fig8
//! workload (concurrent tumbling windows, sum, in-order stream).
//!
//! Run: `cargo bench -p gss-bench --bench batch`

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use gss_aggregates::Sum;
use gss_bench::{as_elements, build, concurrent_tumbling_queries, run, run_batched, Technique};
use gss_core::{StreamOrder, Time};
use gss_data::{FootballConfig, FootballGenerator};

const TUPLES: usize = 200_000;
const QUERIES: usize = 5;

fn bench_batch(c: &mut Criterion) {
    let mut gen = FootballGenerator::new(FootballConfig::default());
    let tuples: Vec<(Time, i64)> = gen.take(TUPLES);
    let elements = as_elements(&tuples);
    let queries = concurrent_tumbling_queries(QUERIES);

    for tech in [Technique::LazySlicing, Technique::EagerSlicing, Technique::TupleBuffer] {
        let mut group = c.benchmark_group(format!("batch_ingestion/{}", tech.name()));
        group.throughput(Throughput::Elements(TUPLES as u64));
        group.sample_size(10);
        group.bench_function("per_tuple", |b| {
            b.iter_batched(
                || build(tech, Sum, &queries, StreamOrder::InOrder, 0),
                |mut agg| run(agg.as_mut(), &elements),
                BatchSize::LargeInput,
            )
        });
        for batch_size in [64usize, 512, 4096] {
            group.bench_function(format!("batched_{batch_size}"), |b| {
                b.iter_batched(
                    || build(tech, Sum, &queries, StreamOrder::InOrder, 0),
                    |mut agg| run_batched(agg.as_mut(), &elements, batch_size),
                    BatchSize::LargeInput,
                )
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_batch);
criterion_main!(benches);
