//! Criterion bench: per-tuple processing cost of the aggregation
//! techniques on the paper's standard workload (paper Figure 8, micro
//! version): 20 concurrent tumbling windows, in-order football data, sum.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use gss_aggregates::Sum;
use gss_bench::{as_elements, build, concurrent_tumbling_queries, run, Technique};
use gss_core::StreamOrder;
use gss_data::{FootballConfig, FootballGenerator};

fn bench_throughput(c: &mut Criterion) {
    let tuples = FootballGenerator::new(FootballConfig::default()).take(100_000);
    let elements = as_elements(&tuples);
    let queries = concurrent_tumbling_queries(20);

    let mut g = c.benchmark_group("throughput-20-windows");
    g.sample_size(10);
    g.throughput(Throughput::Elements(elements.len() as u64));
    for tech in [
        Technique::LazySlicing,
        Technique::EagerSlicing,
        Technique::Pairs,
        Technique::Cutty,
        Technique::Buckets,
        Technique::TupleBuffer,
        Technique::AggregateTree,
    ] {
        g.bench_function(tech.name(), |b| {
            b.iter_batched(
                || build(tech, Sum, &queries, StreamOrder::InOrder, 0),
                |mut agg| run(agg.as_mut(), &elements).results,
                BatchSize::PerIteration,
            )
        });
    }
    g.finish();
}

criterion_group!(benches, bench_throughput);
criterion_main!(benches);
