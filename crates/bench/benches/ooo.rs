//! Microbenchmark for the out-of-order batch path: late-run grouping
//! (`process_batch` on a disordered stream) vs the per-tuple fallback
//! (`disable_ooo_batching`), lazy, eager, and finger-tree stores, 20%
//! disorder.
//!
//! Run: `cargo bench -p gss-bench --bench ooo`

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use gss_aggregates::Sum;
use gss_bench::{build_slicing, concurrent_tumbling_queries, run_batched};
use gss_core::{StorePolicy, StreamOrder, Time};
use gss_data::{make_out_of_order, with_watermarks, FootballConfig, FootballGenerator, OooConfig};

const TUPLES: usize = 200_000;
const QUERIES: usize = 20;

fn bench_ooo(c: &mut Criterion) {
    let mut gen = FootballGenerator::new(FootballConfig::default());
    let tuples: Vec<(Time, i64)> = gen.take(TUPLES);
    let arrivals = make_out_of_order(
        &tuples,
        OooConfig { fraction_percent: 20, max_delay: 2_000, ..Default::default() },
    );
    let elements = with_watermarks(&arrivals, 500, 2_000);
    let queries = concurrent_tumbling_queries(QUERIES);

    for (policy, name) in [
        (StorePolicy::Lazy, "lazy"),
        (StorePolicy::Eager, "eager"),
        (StorePolicy::FingerTree, "finger"),
    ] {
        let mut group = c.benchmark_group(format!("ooo_ingestion/{name}"));
        group.throughput(Throughput::Elements(TUPLES as u64));
        group.sample_size(10);
        for batch_size in [64usize, 512] {
            group.bench_function(format!("fallback_{batch_size}"), |b| {
                b.iter_batched(
                    || build_slicing(Sum, policy, &queries, StreamOrder::OutOfOrder, 2_000, true),
                    |mut agg| run_batched(agg.as_mut(), &elements, batch_size),
                    BatchSize::LargeInput,
                )
            });
            group.bench_function(format!("batched_{batch_size}"), |b| {
                b.iter_batched(
                    || build_slicing(Sum, policy, &queries, StreamOrder::OutOfOrder, 2_000, false),
                    |mut agg| run_batched(agg.as_mut(), &elements, batch_size),
                    BatchSize::LargeInput,
                )
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_ooo);
criterion_main!(benches);
