//! Microbenchmark for the bulk fold kernels: hand-written
//! `fold_slice` vs the default lift/combine fold on a 4096-element
//! contiguous run, per aggregate function. `default_inline` is the
//! monomorphized loop (auto-vectorized by LLVM for `i64`, so it tracks
//! the kernel); `default_opaque` routes `lift`/`combine` through
//! `black_box`ed function pointers — the per-element cost every
//! dispatch-opaque runtime pays (see `src/bin/fold.rs` for the full
//! framing).
//!
//! Run: `cargo bench -p gss-bench --bench fold`

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use gss_aggregates::{Avg, CountAgg, Max, Min, SampleStdDev, Sum};
use gss_core::{default_fold_slice, AggregateFunction};

const RUN_LEN: usize = 4096;

fn opaque_fold<A: AggregateFunction<Input = i64>>(f: &A, values: &[i64]) -> Option<A::Partial> {
    let lift: fn(&A, &i64) -> A::Partial = black_box(A::lift);
    let combine: fn(&A, A::Partial, &A::Partial) -> A::Partial = black_box(A::combine);
    let mut acc: Option<A::Partial> = None;
    for v in values {
        let lifted = lift(f, v);
        acc = Some(match acc {
            None => lifted,
            Some(a) => combine(f, a, &lifted),
        });
    }
    acc
}

fn bench_one<A: AggregateFunction<Input = i64>>(
    c: &mut Criterion,
    f: &A,
    name: &str,
    values: &[i64],
) {
    let mut group = c.benchmark_group(format!("fold_kernel/{name}"));
    group.throughput(Throughput::Elements(RUN_LEN as u64));
    group.bench_function("kernel", |b| b.iter(|| black_box(f.fold_slice(black_box(values)))));
    group.bench_function("default_inline", |b| {
        b.iter(|| black_box(default_fold_slice(f, black_box(values))))
    });
    group.bench_function("default_opaque", |b| {
        b.iter(|| black_box(opaque_fold(f, black_box(values))))
    });
    group.finish();
}

fn bench_fold(c: &mut Criterion) {
    let values: Vec<i64> = (0..RUN_LEN as i64).map(|i| (i * 37 + 11) % 1_001 - 500).collect();
    bench_one(c, &CountAgg, "count", &values);
    bench_one(c, &Sum, "sum", &values);
    bench_one(c, &Avg, "avg", &values);
    bench_one(c, &Min, "min", &values);
    bench_one(c, &Max, "max", &values);
    bench_one(c, &SampleStdDev, "stddev", &values);
}

criterion_group!(benches, bench_fold);
criterion_main!(benches);
