//! Criterion bench: slice-split recomputation cost (paper Figure 15) —
//! the expensive operation behind context-aware windows.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use gss_aggregates::{Median, Sum};
use gss_core::{AggregateFunction, Range, Slice, Time};

fn filled_slice<A: AggregateFunction<Input = i64> + Copy>(f: A, n: usize) -> Slice<A> {
    let mut slice: Slice<A> = Slice::new(Range::new(0, n as Time), true);
    for i in 0..n as i64 {
        slice.add_in_order(&f, i, i % 97);
    }
    slice
}

fn bench_split(c: &mut Criterion) {
    for n in [1_000usize, 100_000] {
        let mut g = c.benchmark_group(format!("split-{n}"));
        g.sample_size(10);
        let sum_template = filled_slice(Sum, n);
        g.bench_function("sum", |b| {
            b.iter_batched(
                || sum_template.clone(),
                |mut s| s.split(&Sum, n as Time / 2),
                BatchSize::LargeInput,
            )
        });
        let median_template = filled_slice(Median, n);
        g.bench_function("median", |b| {
            b.iter_batched(
                || median_template.clone(),
                |mut s| s.split(&Median, n as Time / 2),
                BatchSize::LargeInput,
            )
        });
        g.finish();
    }
}

criterion_group!(benches, bench_split);
criterion_main!(benches);
