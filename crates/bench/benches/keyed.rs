//! Criterion microbenchmark: keyed sliding-window sum through the
//! shared-timeline `KeyedWindowOperator` vs the naive map of per-key
//! `WindowOperator`s, at a small and a large key count.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};

use gss_aggregates::Sum;
use gss_core::{
    KeyedConfig, KeyedWindowOperator, NaiveKeyedOperator, PerKey, Time, WindowAggregator,
    WindowFunction, WindowResult,
};
use gss_windows::SlidingWindow;

const TUPLES: usize = 200_000;
const BATCH: usize = 512;
const LATENESS: i64 = 500;

fn windows() -> Vec<Box<dyn WindowFunction>> {
    vec![Box::new(SlidingWindow::new(1_000, 250))]
}

fn cfg() -> KeyedConfig {
    KeyedConfig::default().with_allowed_lateness(LATENESS)
}

fn make_batches(keys: u64) -> Vec<Vec<(Time, (u64, i64))>> {
    (0..TUPLES)
        .map(|i| (i as Time, (i as u64 % keys, 1i64)))
        .collect::<Vec<_>>()
        .chunks(BATCH)
        .map(|c| c.to_vec())
        .collect()
}

fn drive(
    agg: &mut dyn WindowAggregator<PerKey<Sum>>,
    batches: &[Vec<(Time, (u64, i64))>],
) -> usize {
    let mut out: Vec<WindowResult<(u64, i64)>> = Vec::new();
    let mut emitted = 0;
    for (i, b) in batches.iter().enumerate() {
        agg.process_batch(b, &mut out);
        if i % 8 == 7 {
            let high = b.last().expect("non-empty batch").0;
            agg.on_watermark(high - LATENESS, &mut out);
        }
        emitted += out.len();
        out.clear();
    }
    agg.on_watermark(i64::MAX - 1, &mut out);
    emitted + out.len()
}

fn bench_keyed(c: &mut Criterion) {
    for keys in [1_000u64, 100_000] {
        let batches = make_batches(keys);
        let mut group = c.benchmark_group(format!("keyed/{keys}-keys"));
        group.throughput(Throughput::Elements(TUPLES as u64));
        group.sample_size(10);
        group.bench_function("shared", |b| {
            b.iter_batched(
                || KeyedWindowOperator::new(Sum, windows(), cfg()),
                |mut agg| drive(&mut agg, &batches),
                BatchSize::LargeInput,
            )
        });
        group.bench_function("naive", |b| {
            b.iter_batched(
                || NaiveKeyedOperator::new(Sum, windows(), cfg()),
                |mut agg| drive(&mut agg, &batches),
                BatchSize::LargeInput,
            )
        });
        group.finish();
    }
}

criterion_group!(benches, bench_keyed);
criterion_main!(benches);
