//! Criterion microbenchmark: key-sharded keyed execution
//! (`run_sharded_keyed`) vs the single-threaded keyed operator,
//! sliding-window sum over an in-order keyed stream, at 1/2/4 shards.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};

use gss_aggregates::Sum;
use gss_core::{
    KeyedConfig, KeyedWindowOperator, PerKey, StreamElement, Time, WindowAggregator, WindowResult,
};
use gss_stream::{run_sharded_keyed, PipelineConfig};
use gss_windows::SlidingWindow;

const TUPLES: usize = 200_000;
const LATENESS: i64 = 500;
const KEYS: u64 = 10_000;
const BATCH: usize = 512;

fn shared_op() -> Box<dyn WindowAggregator<PerKey<Sum>>> {
    let windows: Vec<Box<dyn gss_core::WindowFunction>> =
        vec![Box::new(SlidingWindow::new(1_000, 250))];
    Box::new(KeyedWindowOperator::new(
        Sum,
        windows,
        KeyedConfig::default().with_allowed_lateness(LATENESS),
    ))
}

fn make_elements() -> Vec<StreamElement<(u64, i64)>> {
    let mut v = Vec::with_capacity(TUPLES + TUPLES / 1_000 + 2);
    for i in 0..TUPLES {
        let ts = i as Time;
        v.push(StreamElement::Record { ts, value: (i as u64 % KEYS, (i % 101) as i64 - 50) });
        if i % 1_000 == 999 {
            v.push(StreamElement::Watermark(ts - LATENESS));
        }
    }
    v.push(StreamElement::Watermark(i64::MAX - 1));
    v
}

fn bench_shard(c: &mut Criterion) {
    let elements = make_elements();

    let mut group = c.benchmark_group("shard");
    group.throughput(Throughput::Elements(TUPLES as u64));
    group.sample_size(10);

    group.bench_function("single-threaded", |b| {
        b.iter_batched(
            || elements.clone(),
            |elements| {
                let mut op = shared_op();
                let mut out: Vec<WindowResult<(u64, i64)>> = Vec::new();
                let mut buf: Vec<(Time, (u64, i64))> = Vec::with_capacity(BATCH);
                let mut count = 0usize;
                for e in &elements {
                    match e {
                        StreamElement::Record { ts, value } => {
                            buf.push((*ts, *value));
                            if buf.len() >= BATCH {
                                op.process_batch(&buf, &mut out);
                                buf.clear();
                            }
                        }
                        StreamElement::Watermark(wm) => {
                            if !buf.is_empty() {
                                op.process_batch(&buf, &mut out);
                                buf.clear();
                            }
                            op.on_watermark(*wm, &mut out);
                        }
                        StreamElement::Punctuation(_) => {}
                    }
                    count += out.len();
                    out.clear();
                }
                count
            },
            BatchSize::LargeInput,
        )
    });

    for shards in [1usize, 2, 4] {
        group.bench_function(format!("shards-{shards}"), |b| {
            b.iter_batched(
                || elements.clone(),
                |elements| {
                    run_sharded_keyed(
                        elements,
                        PipelineConfig::with_parallelism(shards)
                            .with_batch_size(BATCH)
                            .throughput_only(),
                        |_shard| shared_op(),
                    )
                    .result_count
                },
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_shard);
criterion_main!(benches);
