//! Criterion bench: output latency of the aggregate stores (paper
//! Figure 11) — the time to produce one final window aggregate from `n`
//! stored entries, per technique and aggregation class.

use criterion::{criterion_group, criterion_main, Criterion};
use gss_aggregates::{Median, Sum};
use gss_core::{AggregateFunction, FlatFat, Range, SliceStore, StorePolicy};

fn slice_store<A: AggregateFunction<Input = i64> + Copy>(
    f: A,
    policy: StorePolicy,
    n: usize,
) -> SliceStore<A> {
    let mut st = SliceStore::new(f, policy, false);
    for i in 0..n as i64 {
        st.append_slice(Range::new(i * 10, (i + 1) * 10));
        st.add_in_order(i * 10, i % 97);
    }
    st
}

fn bench_latency(c: &mut Criterion) {
    for n in [100usize, 10_000] {
        let full = Range::new(0, n as i64 * 10);

        let mut g = c.benchmark_group(format!("latency-sum-{n}"));
        let lazy = slice_store(Sum, StorePolicy::Lazy, n);
        g.bench_function("lazy-slicing", |b| b.iter(|| Sum.lower(&lazy.query_time(full).unwrap())));
        let eager = slice_store(Sum, StorePolicy::Eager, n);
        g.bench_function("eager-slicing", |b| {
            b.iter(|| Sum.lower(&eager.query_time(full).unwrap()))
        });
        let tuples: Vec<i64> = (0..n as i64).map(|i| i % 97).collect();
        g.bench_function("tuple-buffer", |b| {
            b.iter(|| Sum.lower(&Sum.lift_all(tuples.iter()).unwrap()))
        });
        let mut tree = FlatFat::with_capacity(Sum, n);
        for v in &tuples {
            tree.push(Some(Sum.lift(v)));
        }
        g.bench_function("aggregate-tree", |b| b.iter(|| Sum.lower(&tree.query(0, n).unwrap())));
        g.finish();

        let mut g = c.benchmark_group(format!("latency-median-{n}"));
        g.sample_size(20);
        let lazy = slice_store(Median, StorePolicy::Lazy, n);
        g.bench_function("lazy-slicing", |b| {
            b.iter(|| Median.lower(&lazy.query_time(full).unwrap()))
        });
        let eager = slice_store(Median, StorePolicy::Eager, n);
        g.bench_function("eager-slicing", |b| {
            b.iter(|| Median.lower(&eager.query_time(full).unwrap()))
        });
        g.finish();
    }
}

criterion_group!(benches, bench_latency);
criterion_main!(benches);
