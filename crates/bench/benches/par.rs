//! Criterion microbenchmark: intra-query parallel slicing (`run_parallel`
//! two-stage path) vs the sequential operator, sliding-window sum over an
//! in-order stream, at 1/2/4 workers and two driver batch sizes.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};

use gss_aggregates::Sum;
use gss_core::{OperatorConfig, StreamElement, Time, WindowFunction};
use gss_stream::{run_parallel, PipelineConfig};
use gss_windows::SlidingWindow;

const TUPLES: usize = 200_000;
const LATENESS: i64 = 500;

fn windows() -> Vec<Box<dyn WindowFunction>> {
    vec![Box::new(SlidingWindow::new(1_000, 250))]
}

fn make_elements() -> Vec<StreamElement<i64>> {
    let mut v = Vec::with_capacity(TUPLES + TUPLES / 1_000 + 2);
    for i in 0..TUPLES {
        let ts = i as Time;
        v.push(StreamElement::Record { ts, value: (i % 101) as i64 - 50 });
        if i % 1_000 == 999 {
            v.push(StreamElement::Watermark(ts - LATENESS));
        }
    }
    v.push(StreamElement::Watermark(i64::MAX - 1));
    v
}

fn bench_par(c: &mut Criterion) {
    let elements = make_elements();
    for batch in [64usize, 512] {
        let mut group = c.benchmark_group(format!("par/batch-{batch}"));
        group.throughput(Throughput::Elements(TUPLES as u64));
        group.sample_size(10);
        for workers in [1usize, 2, 4] {
            group.bench_function(format!("workers-{workers}"), |b| {
                b.iter_batched(
                    || elements.clone(),
                    |elements| {
                        run_parallel(
                            elements,
                            PipelineConfig::with_parallelism(workers)
                                .with_batch_size(batch)
                                .throughput_only(),
                            Sum,
                            windows(),
                            OperatorConfig::out_of_order(LATENESS),
                        )
                        .result_count
                    },
                    BatchSize::LargeInput,
                )
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_par);
criterion_main!(benches);
