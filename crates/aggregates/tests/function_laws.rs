//! Property tests for the algebraic laws every aggregate function
//! declares (paper Section 4.2): associativity for all, commutativity and
//! invertibility where claimed. The slicing core *trusts* these
//! declarations, so they are load-bearing.

use gss_aggregates::*;
use gss_core::AggregateFunction;
use proptest::prelude::*;

/// Asserts `combine` associativity on three partials built from value
/// slices (exact equality for integer partials).
fn assoc_exact<A>(f: A, xs: &[A::Input], ys: &[A::Input], zs: &[A::Input])
where
    A: AggregateFunction,
    A::Partial: PartialEq + std::fmt::Debug,
{
    let (Some(a), Some(b), Some(c)) =
        (f.lift_all(xs.iter()), f.lift_all(ys.iter()), f.lift_all(zs.iter()))
    else {
        return;
    };
    let left = f.combine(f.combine(a.clone(), &b), &c);
    let right = f.combine(a, &f.combine(b.clone(), &c));
    assert_eq!(left, right);
}

/// Commutativity check.
fn commut_exact<A>(f: A, xs: &[A::Input], ys: &[A::Input])
where
    A: AggregateFunction,
    A::Partial: PartialEq + std::fmt::Debug,
{
    let (Some(a), Some(b)) = (f.lift_all(xs.iter()), f.lift_all(ys.iter())) else {
        return;
    };
    assert_eq!(f.combine(a.clone(), &b), f.combine(b, &a));
}

/// Invert law: `invert(combine(a, b), b) == a`.
fn invert_exact<A>(f: A, xs: &[A::Input], ys: &[A::Input])
where
    A: AggregateFunction,
    A::Partial: PartialEq + std::fmt::Debug,
{
    let (Some(a), Some(b)) = (f.lift_all(xs.iter()), f.lift_all(ys.iter())) else {
        return;
    };
    assert!(f.properties().invertible);
    let ab = f.combine(a.clone(), &b);
    assert_eq!(f.invert(ab, &b), Some(a));
}

fn vals() -> impl Strategy<Value = Vec<i64>> {
    prop::collection::vec(-1_000i64..1_000, 1..20)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn sum_laws(x in vals(), y in vals(), z in vals()) {
        assoc_exact(Sum, &x, &y, &z);
        commut_exact(Sum, &x, &y);
        invert_exact(Sum, &x, &y);
    }

    #[test]
    fn count_laws(x in vals(), y in vals(), z in vals()) {
        assoc_exact(CountAgg, &x, &y, &z);
        commut_exact(CountAgg, &x, &y);
        invert_exact(CountAgg, &x, &y);
    }

    #[test]
    fn avg_laws(x in vals(), y in vals(), z in vals()) {
        assoc_exact(Avg, &x, &y, &z);
        commut_exact(Avg, &x, &y);
        invert_exact(Avg, &x, &y);
    }

    #[test]
    fn min_max_laws(x in vals(), y in vals(), z in vals()) {
        assoc_exact(Min, &x, &y, &z);
        assoc_exact(Max, &x, &y, &z);
        commut_exact(Min, &x, &y);
        commut_exact(Max, &x, &y);
    }

    #[test]
    fn min_invert_is_conservative(x in vals(), y in vals()) {
        // When Min::invert returns Some, the result must equal a true
        // recomputation of the remaining multiset.
        let f = Min;
        let a = f.lift_all(x.iter()).unwrap();
        let b = f.lift_all(y.iter()).unwrap();
        let ab = f.combine(a, &b);
        if let Some(res) = f.invert(ab, &b) {
            prop_assert_eq!(res, a);
        }
    }

    #[test]
    fn extremum_count_laws(x in vals(), y in vals(), z in vals()) {
        assoc_exact(MinCount, &x, &y, &z);
        assoc_exact(MaxCount, &x, &y, &z);
        commut_exact(MinCount, &x, &y);
        commut_exact(MaxCount, &x, &y);
    }

    #[test]
    fn mincount_matches_naive(x in vals()) {
        let f = MinCount;
        let p = f.lift_all(x.iter()).unwrap();
        let min = *x.iter().min().unwrap();
        let count = x.iter().filter(|&&v| v == min).count() as u64;
        prop_assert_eq!(f.lower(&p), (min, count));
    }

    #[test]
    fn argmin_matches_naive(pairs in prop::collection::vec((-100i64..100, 0i64..1000), 1..30)) {
        let f = ArgMin;
        let p = f.lift_all(pairs.iter()).unwrap();
        let best = pairs.iter().map(|(v, arg)| (*v, *arg)).min().unwrap().1;
        prop_assert_eq!(f.lower(&p), best);
        assoc_exact(ArgMin, &pairs, &pairs, &pairs);
        commut_exact(ArgMin, &pairs, &pairs);
        commut_exact(ArgMax, &pairs, &pairs);
    }

    #[test]
    fn stddev_laws_and_accuracy(x in vals(), y in vals(), z in vals()) {
        // Moments are f64 sums of integers well within exact range:
        // equality is exact.
        assoc_exact(SampleStdDev, &x, &y, &z);
        commut_exact(SampleStdDev, &x, &y);
        invert_exact(SampleStdDev, &x, &y);
        assoc_exact(PopulationStdDev, &x, &y, &z);
        if x.len() >= 2 {
            let f = SampleStdDev;
            let p = f.lift_all(x.iter()).unwrap();
            let n = x.len() as f64;
            let mean = x.iter().sum::<i64>() as f64 / n;
            let naive =
                (x.iter().map(|&v| (v as f64 - mean).powi(2)).sum::<f64>() / (n - 1.0)).sqrt();
            prop_assert!((f.lower(&p) - naive).abs() < 1e-6);
        }
    }

    #[test]
    fn m4_laws_and_accuracy(pairs in prop::collection::vec((0i64..10_000, -100i64..100), 1..30)) {
        assoc_exact(M4, &pairs, &pairs, &pairs);
        commut_exact(M4, &pairs, &pairs);
        let f = M4;
        let p = f.lift_all(pairs.iter()).unwrap();
        prop_assert_eq!(p.min, pairs.iter().map(|(_, v)| *v).min().unwrap());
        prop_assert_eq!(p.max, pairs.iter().map(|(_, v)| *v).max().unwrap());
        let first = pairs.iter().enumerate().min_by_key(|(i, (t, _))| (*t, *i)).unwrap();
        prop_assert_eq!(p.first, first.1 .1);
    }

    #[test]
    fn median_laws_and_accuracy(x in vals(), y in vals(), z in vals()) {
        assoc_exact(Median, &x, &y, &z);
        commut_exact(Median, &x, &y);
        let f = Median;
        let p = f.lift_all(x.iter()).unwrap();
        let mut sorted = x.clone();
        sorted.sort();
        prop_assert_eq!(f.lower(&p), sorted[(sorted.len() - 1) / 2]);
    }

    #[test]
    fn percentile_matches_nearest_rank(x in vals(), pct in 1u32..=100) {
        let p = pct as f64 / 100.0;
        let f = Percentile::new(p);
        let partial = f.lift_all(x.iter()).unwrap();
        let mut sorted = x.clone();
        sorted.sort();
        let k = ((p * sorted.len() as f64).ceil() as usize).max(1);
        prop_assert_eq!(f.lower(&partial), sorted[k - 1]);
    }

    #[test]
    fn rle_roundtrip_preserves_multiset(x in vals()) {
        let f = Median;
        let p = f.lift_all(x.iter()).unwrap();
        prop_assert_eq!(p.len(), x.len() as u64);
        let distinct: std::collections::HashSet<i64> = x.iter().copied().collect();
        prop_assert_eq!(p.distinct(), distinct.len());
    }

    #[test]
    fn geo_mean_accuracy(x in prop::collection::vec(1i64..1_000, 1..20)) {
        let f = GeometricMean;
        let p = f.lift_all(x.iter()).unwrap();
        let naive = (x.iter().map(|&v| (v as f64).ln()).sum::<f64>() / x.len() as f64).exp();
        prop_assert!((f.lower(&p) - naive).abs() / naive < 1e-9);
    }

    #[test]
    fn first_last_follow_embedded_timestamps(
        pairs in prop::collection::vec((0i64..10_000, -100i64..100), 1..30),
    ) {
        let first = First.lift_all(pairs.iter()).unwrap();
        let last = Last.lift_all(pairs.iter()).unwrap();
        let by_ts_first = pairs.iter().enumerate().min_by_key(|(i, (t, _))| (*t, *i)).unwrap();
        prop_assert_eq!(First.lower(&first), by_ts_first.1 .1);
        let max_ts = pairs.iter().map(|(t, _)| *t).max().unwrap();
        // Ties at the max timestamp keep the first-seen value (combine
        // keeps `a` on equal timestamps).
        let by_ts_last = pairs.iter().find(|(t, _)| *t == max_ts).unwrap();
        prop_assert_eq!(Last.lower(&last), by_ts_last.1);
    }
}
