//! # gss-aggregates
//!
//! Incremental aggregate functions for general stream slicing, following
//! the lift/combine/lower/invert decomposition of Tangwongsan et al. [42]
//! (paper Section 5.4.1). The set mirrors the functions benchmarked in the
//! paper's Figure 13 plus the M4 visualization aggregation of Section 6.4
//! and the holistic median / 90-percentile.
//!
//! | Function | Kind | Commutative | Invertible |
//! |---|---|---|---|
//! | [`CountAgg`], [`Sum`], [`Avg`] | distributive/algebraic | yes | yes |
//! | [`SumNoInvert`] | distributive | yes | no (declared) |
//! | [`Min`], [`Max`], [`MinCount`], [`MaxCount`] | distributive/algebraic | yes | no¹ |
//! | [`ArgMin`], [`ArgMax`] | algebraic | no (first-tie) | no¹ |
//! | [`GeometricMean`], [`SampleStdDev`], [`PopulationStdDev`] | algebraic | yes | yes |
//! | [`M4`], [`First`], [`Last`] | algebraic | yes | no |
//! | [`Median`], [`Percentile`] | holistic | yes | no |
//!
//! ¹ Their `invert` still succeeds when the removed value provably does not
//! affect the extremum — the effect behind the small count-window slowdown
//! of min/max-family functions in Figure 13.

pub mod basic;
pub mod holistic;
pub mod lanes;
pub mod m4;
pub mod minmax;
pub mod stats;

pub use basic::{Avg, AvgPartial, CountAgg, Sum, SumNoInvert};
pub use holistic::{Median, MedianNoRle, Percentile, SortedRle, SortedVec};
pub use m4::{First, Last, M4Partial, Stamped, M4};
pub use minmax::{ArgExtremum, ArgMax, ArgMin, ExtremumCount, Max, MaxCount, Min, MinCount};
pub use stats::{GeoMeanPartial, GeometricMean, MomentsPartial, PopulationStdDev, SampleStdDev};
