//! M4 and first/last aggregations.
//!
//! M4 (Jugel et al. [26]) computes four algebraic aggregates per window —
//! minimum, maximum, first and last value — and is the visualization
//! workload of the paper's dashboard application (Section 6.4). Because
//! "first" and "last" depend on positions, input tuples carry their
//! timestamp: `Input = (Time, value)`; with the timestamp inside the
//! partial, combining stays commutative.

use gss_core::{AggregateFunction, FunctionKind, FunctionProperties, HeapSize, Time};

/// The four M4 aggregates of one window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct M4Partial {
    pub min: i64,
    pub max: i64,
    pub first_ts: Time,
    pub first: i64,
    pub last_ts: Time,
    pub last: i64,
}

impl HeapSize for M4Partial {
    fn heap_bytes(&self) -> usize {
        0
    }
}

/// M4: min, max, first, last per window. Algebraic, commutative (thanks to
/// embedded timestamps), not invertible.
#[derive(Debug, Clone, Copy, Default)]
pub struct M4;

impl AggregateFunction for M4 {
    type Input = (Time, i64);
    type Partial = M4Partial;
    type Output = M4Partial;

    fn lift(&self, (ts, v): &(Time, i64)) -> M4Partial {
        M4Partial { min: *v, max: *v, first_ts: *ts, first: *v, last_ts: *ts, last: *v }
    }

    fn combine(&self, a: M4Partial, b: &M4Partial) -> M4Partial {
        let (first_ts, first) =
            if a.first_ts <= b.first_ts { (a.first_ts, a.first) } else { (b.first_ts, b.first) };
        let (last_ts, last) =
            if a.last_ts >= b.last_ts { (a.last_ts, a.last) } else { (b.last_ts, b.last) };
        M4Partial { min: a.min.min(b.min), max: a.max.max(b.max), first_ts, first, last_ts, last }
    }

    fn lower(&self, p: &M4Partial) -> M4Partial {
        *p
    }

    fn properties(&self) -> FunctionProperties {
        FunctionProperties { commutative: true, invertible: false, kind: FunctionKind::Algebraic }
    }

    /// Paired-column lane kernel. Unlike the strided arg-min/arg-max
    /// split, M4's first/last tie-breaks are **order-sensitive** (`<=` /
    /// `>=` keep the earlier-folded side), so the kernel uses the
    /// order-preserving block split of the [`crate::lanes`] policy: each
    /// lane owns one contiguous block of the run, lanes reduce in stream
    /// order, and the tail folds in order — pure
    /// re-parenthesization of the associative ⊕, hence bit-identical to
    /// the per-element fold including timestamp ties. The input pairs are
    /// self-contained, so the record-time column is unused.
    fn fold_slice_pairs(&self, _times: &[Time], values: &[(Time, i64)]) -> Option<M4Partial> {
        let n = values.len();
        // Two blocks, not four: the 48-byte partial times four lanes
        // spills out of registers and measured *slower* than the
        // sequential fold; two accumulators stay resident and still
        // break the per-element dependency chain.
        let b = n / 2;
        if b < 8 {
            // Too short for the block overhead; the sequential fold is
            // exact by definition.
            return gss_core::default_fold_slice(self, values);
        }
        // Two contiguous blocks walked by zipped iterators (no index
        // arithmetic, no bounds checks in the hot loop) plus the tail.
        let (c0, rest) = values.split_at(b);
        let (c1, tail) = rest.split_at(b);
        // Within a lane this is exactly `combine(a, lift(x))`: strict
        // `<` / `>` on the timestamps keeps the earlier-folded side on
        // ties, and min/max are plain cmovs.
        let upd = |a: &mut M4Partial, &(ts, v): &(Time, i64)| {
            if ts < a.first_ts {
                a.first_ts = ts;
                a.first = v;
            }
            if ts > a.last_ts {
                a.last_ts = ts;
                a.last = v;
            }
            a.min = a.min.min(v);
            a.max = a.max.max(v);
        };
        let mut acc = [self.lift(&c0[0]), self.lift(&c1[0])];
        for (x0, x1) in c0[1..].iter().zip(&c1[1..]) {
            upd(&mut acc[0], x0);
            upd(&mut acc[1], x1);
        }
        let [a0, a1] = acc;
        let mut p = self.combine(a0, &a1);
        for x in tail {
            p = self.combine(p, &self.lift(x));
        }
        Some(p)
    }
    fn has_pair_kernel(&self) -> bool {
        true
    }
    /// The per-element path copies the 48-byte partial and runs four
    /// compares per tuple, so the block kernel breaks even below the
    /// default gather threshold.
    fn kernel_min_run(&self) -> usize {
        8
    }
}

/// Partial for [`First`]/[`Last`]: a timestamped value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Stamped {
    pub ts: Time,
    pub value: i64,
}

impl HeapSize for Stamped {
    fn heap_bytes(&self) -> usize {
        0
    }
}

/// Earliest value of the window (by embedded timestamp). Algebraic.
#[derive(Debug, Clone, Copy, Default)]
pub struct First;

impl AggregateFunction for First {
    type Input = (Time, i64);
    type Partial = Stamped;
    type Output = i64;

    fn lift(&self, (ts, v): &(Time, i64)) -> Stamped {
        Stamped { ts: *ts, value: *v }
    }
    fn combine(&self, a: Stamped, b: &Stamped) -> Stamped {
        if a.ts <= b.ts {
            a
        } else {
            *b
        }
    }
    fn lower(&self, p: &Stamped) -> i64 {
        p.value
    }
    fn properties(&self) -> FunctionProperties {
        FunctionProperties { commutative: true, invertible: false, kind: FunctionKind::Algebraic }
    }
}

/// Latest value of the window (by embedded timestamp). Algebraic.
#[derive(Debug, Clone, Copy, Default)]
pub struct Last;

impl AggregateFunction for Last {
    type Input = (Time, i64);
    type Partial = Stamped;
    type Output = i64;

    fn lift(&self, (ts, v): &(Time, i64)) -> Stamped {
        Stamped { ts: *ts, value: *v }
    }
    fn combine(&self, a: Stamped, b: &Stamped) -> Stamped {
        if a.ts >= b.ts {
            a
        } else {
            *b
        }
    }
    fn lower(&self, p: &Stamped) -> i64 {
        p.value
    }
    fn properties(&self) -> FunctionProperties {
        FunctionProperties { commutative: true, invertible: false, kind: FunctionKind::Algebraic }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn m4_collects_all_four() {
        let f = M4;
        let p = f.lift_all([&(10, 5), &(20, 1), &(30, 9), &(40, 3)]).unwrap();
        assert_eq!(p.min, 1);
        assert_eq!(p.max, 9);
        assert_eq!(p.first, 5);
        assert_eq!(p.last, 3);
    }

    #[test]
    fn m4_is_commutative_with_timestamps() {
        let f = M4;
        let a = f.lift(&(10, 5));
        let b = f.lift(&(20, 7));
        assert_eq!(f.combine(a, &b), f.combine(b, &a));
    }

    #[test]
    fn m4_associativity_spot_check() {
        let f = M4;
        let (a, b, c) = (f.lift(&(1, 4)), f.lift(&(2, -3)), f.lift(&(3, 10)));
        assert_eq!(f.combine(f.combine(a, &b), &c), f.combine(a, &f.combine(b, &c)));
    }

    #[test]
    fn m4_pair_kernel_matches_default_including_timestamp_ties() {
        assert!(M4.has_pair_kernel());
        // Repeated timestamps with distinct values: the order-sensitive
        // first/last tie-breaks must pick the same element as the
        // sequential fold. Non-monotone ts exercises the late-group shape.
        let pairs: Vec<(Time, i64)> = (0..141).map(|i| ((i * 7) % 13, 1000 + i)).collect();
        let times: Vec<Time> = (0..141).collect();
        for len in [0, 1, 7, 8, 31, 32, 33, 127, 141] {
            let v = &pairs[..len];
            assert_eq!(
                M4.fold_slice_pairs(&times[..len], v),
                gss_core::default_fold_slice(&M4, v),
                "m4 len {len}"
            );
        }
    }

    #[test]
    fn first_last_follow_timestamps_not_arrival() {
        let f = First;
        let l = Last;
        // Arrival order differs from timestamp order.
        let inputs = [(30, 3), (10, 1), (20, 2)];
        let fp = f.lift_all(inputs.iter()).unwrap();
        let lp = l.lift_all(inputs.iter()).unwrap();
        assert_eq!(f.lower(&fp), 1);
        assert_eq!(l.lower(&lp), 3);
    }
}
