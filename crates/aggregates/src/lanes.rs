//! Hand-unrolled lane accumulators for the bulk fold kernels.
//!
//! LLVM auto-vectorizes the monomorphized default fold for some functions
//! (integer sum) but the idiom is fragile: a contiguous
//! `fold(i64::MAX, min)` reduction is *not* recognized, and f64 reductions
//! cannot be reassociated at all under the default float semantics. The
//! helpers here make the vector shape explicit on stable Rust (no
//! `std::simd`): a run is split across 4–8 independent accumulator lanes
//! updated in a fixed pattern the backend can keep in vector registers,
//! the lanes are reduced in a fixed order, and a scalar tail handles the
//! remainder. Wider pipelines get the same win from the independent
//! dependency chains even when the backend does not emit packed ops.
//!
//! # Reassociation and determinism policy
//!
//! Every kernel here reorders the abstract fold, so each documents why the
//! result is still exact — or, for floats, exactly how it may differ:
//!
//! * **Exact, order-insensitive folds** (integer min/max, min/max-with-
//!   count, arg-min/arg-max under the lexicographic `(value, arg)`
//!   tie-break): the fold computes the minimum of a total order, which is
//!   associative, commutative, and idempotent, so *any* lane split —
//!   including the SIMD-friendly strided split used here — returns the
//!   exact same bits as the sequential left fold. These kernels are pinned
//!   bit-identical to [`gss_core::default_fold_slice`] by the proptest
//!   grid.
//! * **Exact, order-sensitive folds** (M4's first/last timestamp
//!   tie-breaks): the combine is associative but *not* commutative on
//!   ties, so those kernels (in [`crate::m4`]) use an order-preserving
//!   block split — each lane owns one contiguous block, lanes are reduced
//!   in stream order — which is pure re-parenthesization and therefore
//!   also bit-identical.
//! * **Float folds** (the `Σv`/`Σv²` moments in [`crate::stats`]): f64
//!   addition is not associative, so the strided lane split changes
//!   low-order bits relative to the sequential fold. The policy is
//!   *fixed-shape determinism*: the lane count, the strided element→lane
//!   assignment, the pairwise lane-reduction order, and the in-order
//!   scalar tail are all compile-time constants, so a given input slice
//!   produces the same bits on every call, every run, and every machine
//!   with IEEE-754 f64. Against the sequential fold the result is
//!   ulp-bounded by standard summation error analysis (|err| ≤ n·ε·Σ|xᵢ|),
//!   which the proptest grid checks with that exact bound.

/// Lane width for 8-byte integer reductions: eight lanes fill one AVX-512
/// register or two AVX2 registers, and still buy seven extra independent
/// dependency chains on narrower hardware.
pub const INT_LANES: usize = 8;

/// Lane width for paired `(i64, i64)` and f64 reductions: the state is
/// twice as wide per element, so four lanes keep the working set in
/// registers.
pub const PAIR_LANES: usize = 4;

/// Strided 8-lane minimum. Exact: `min` over `i64` is associative,
/// commutative, and idempotent (seeding every lane with the first element
/// double-counts it harmlessly), so the result is bit-identical to the
/// sequential fold while the inner loop is a branch-free packed-min
/// candidate instead of a serial dependency chain.
pub fn min_i64(values: &[i64]) -> Option<i64> {
    let (&first, _) = values.split_first()?;
    let mut lanes = [first; INT_LANES];
    let mut chunks = values.chunks_exact(INT_LANES);
    for c in &mut chunks {
        for (lane, &v) in lanes.iter_mut().zip(c) {
            *lane = (*lane).min(v);
        }
    }
    let mut acc = first;
    for &lane in &lanes {
        acc = acc.min(lane);
    }
    for &v in chunks.remainder() {
        acc = acc.min(v);
    }
    Some(acc)
}

/// Strided 8-lane maximum; mirror of [`min_i64`].
pub fn max_i64(values: &[i64]) -> Option<i64> {
    let (&first, _) = values.split_first()?;
    let mut lanes = [first; INT_LANES];
    let mut chunks = values.chunks_exact(INT_LANES);
    for c in &mut chunks {
        for (lane, &v) in lanes.iter_mut().zip(c) {
            *lane = (*lane).max(v);
        }
    }
    let mut acc = first;
    for &lane in &lanes {
        acc = acc.max(lane);
    }
    for &v in chunks.remainder() {
        acc = acc.max(v);
    }
    Some(acc)
}

/// Minimum plus the number of elements attaining it, as two vectorizable
/// passes: the lane minimum above, then a branch-free equality count.
/// Exact and order-insensitive — both the extremum and its multiplicity
/// are independent of fold order — hence bit-identical to the sequential
/// lift/combine fold of `MinCount`.
pub fn min_count_i64(values: &[i64]) -> Option<(i64, u64)> {
    let m = min_i64(values)?;
    let mut count = 0u64;
    for &v in values {
        count += u64::from(v == m);
    }
    Some((m, count))
}

/// Maximum plus attaining count; mirror of [`min_count_i64`].
pub fn max_count_i64(values: &[i64]) -> Option<(i64, u64)> {
    let m = max_i64(values)?;
    let mut count = 0u64;
    for &v in values {
        count += u64::from(v == m);
    }
    Some((m, count))
}

/// Strided 4-lane arg-minimum over `(value, arg)` pairs with the
/// lexicographic tie-break (smallest `arg` wins among equal values).
/// Exact: the fold is the minimum of the total order `(value, arg)`, so
/// lane order cannot change which element wins — bit-identical to the
/// sequential fold. The lane update is a pair of conditional moves, never
/// a data-dependent branch, replacing the three-way compare chain of the
/// per-element combine.
pub fn arg_min_pairs(values: &[(i64, i64)]) -> Option<(i64, i64)> {
    let (&(fv, fa), _) = values.split_first()?;
    let mut lv = [fv; PAIR_LANES];
    let mut la = [fa; PAIR_LANES];
    let mut chunks = values.chunks_exact(PAIR_LANES);
    for c in &mut chunks {
        for ((bv, ba), &(v, a)) in lv.iter_mut().zip(la.iter_mut()).zip(c) {
            let take = v < *bv || (v == *bv && a < *ba);
            *bv = if take { v } else { *bv };
            *ba = if take { a } else { *ba };
        }
    }
    let (mut bv, mut ba) = (fv, fa);
    for (&v, &a) in lv.iter().zip(&la) {
        let take = v < bv || (v == bv && a < ba);
        bv = if take { v } else { bv };
        ba = if take { a } else { ba };
    }
    for &(v, a) in chunks.remainder() {
        let take = v < bv || (v == bv && a < ba);
        bv = if take { v } else { bv };
        ba = if take { a } else { ba };
    }
    Some((bv, ba))
}

/// Strided 4-lane arg-maximum; mirror of [`arg_min_pairs`] under the total
/// order (−value, arg).
pub fn arg_max_pairs(values: &[(i64, i64)]) -> Option<(i64, i64)> {
    let (&(fv, fa), _) = values.split_first()?;
    let mut lv = [fv; PAIR_LANES];
    let mut la = [fa; PAIR_LANES];
    let mut chunks = values.chunks_exact(PAIR_LANES);
    for c in &mut chunks {
        for ((bv, ba), &(v, a)) in lv.iter_mut().zip(la.iter_mut()).zip(c) {
            let take = v > *bv || (v == *bv && a < *ba);
            *bv = if take { v } else { *bv };
            *ba = if take { a } else { *ba };
        }
    }
    let (mut bv, mut ba) = (fv, fa);
    for (&v, &a) in lv.iter().zip(&la) {
        let take = v > bv || (v == bv && a < ba);
        bv = if take { v } else { bv };
        ba = if take { a } else { ba };
    }
    for &(v, a) in chunks.remainder() {
        let take = v > bv || (v == bv && a < ba);
        bv = if take { v } else { bv };
        ba = if take { a } else { ba };
    }
    Some((bv, ba))
}

/// Strided 4-lane `(Σv, Σv²)` over `i64` values widened to f64 — the
/// reassociated float kernel of the module policy above. Element `i` goes
/// to lane `i % PAIR_LANES`; lanes reduce pairwise in the fixed order
/// `(l0+l1) + (l2+l3)`; the `len % PAIR_LANES` tail adds in stream order.
/// All shape constants are compile time, so the result is deterministic
/// across calls, runs, and IEEE-754 machines, and differs from the
/// sequential fold only by bounded rounding (|err| ≤ n·ε·Σ|xᵢ| per sum).
pub fn moments_sums(values: &[i64]) -> (f64, f64) {
    let mut sum = [0.0f64; PAIR_LANES];
    let mut sq = [0.0f64; PAIR_LANES];
    let mut chunks = values.chunks_exact(PAIR_LANES);
    for c in &mut chunks {
        for ((s, q), &v) in sum.iter_mut().zip(sq.iter_mut()).zip(c) {
            let x = v as f64;
            *s += x;
            *q += x * x;
        }
    }
    let mut s = (sum[0] + sum[1]) + (sum[2] + sum[3]);
    let mut q = (sq[0] + sq[1]) + (sq[2] + sq[3]);
    for &v in chunks.remainder() {
        let x = v as f64;
        s += x;
        q += x * x;
    }
    (s, q)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data(n: usize) -> Vec<i64> {
        (0..n as i64).map(|i| (i * 73 - 9000) % 513).collect()
    }

    #[test]
    fn min_max_lanes_match_iterator_folds() {
        for n in [0, 1, 2, 7, 8, 9, 16, 63, 64, 65, 257] {
            let v = data(n);
            assert_eq!(min_i64(&v), v.iter().copied().min(), "min len {n}");
            assert_eq!(max_i64(&v), v.iter().copied().max(), "max len {n}");
        }
    }

    #[test]
    fn extremum_counts_count_all_ties() {
        assert_eq!(min_count_i64(&[]), None);
        assert_eq!(min_count_i64(&[5]), Some((5, 1)));
        assert_eq!(min_count_i64(&[3, 1, 1, 2, 1]), Some((1, 3)));
        assert_eq!(max_count_i64(&[3, 3, 1, 2]), Some((3, 2)));
        // Ties split across lane boundaries are still all counted.
        let mut v = vec![9i64; 40];
        v[0] = -4;
        v[13] = -4;
        v[39] = -4;
        assert_eq!(min_count_i64(&v), Some((-4, 3)));
    }

    #[test]
    fn arg_extrema_respect_lexicographic_tie_break() {
        assert_eq!(arg_min_pairs(&[]), None);
        assert_eq!(arg_min_pairs(&[(7, 42)]), Some((7, 42)));
        // Equal minima: the smallest arg wins regardless of lane placement.
        let mut v: Vec<(i64, i64)> = (0..37).map(|i| (100 + i, i)).collect();
        v[5] = (1, 900);
        v[22] = (1, 3);
        v[30] = (1, 450);
        assert_eq!(arg_min_pairs(&v), Some((1, 3)));
        let mut w: Vec<(i64, i64)> = (0..37).map(|i| (100 - i, i)).collect();
        w[4] = (999, 70);
        w[23] = (999, 7);
        assert_eq!(arg_max_pairs(&w), Some((999, 7)));
    }

    #[test]
    fn moments_sums_are_deterministic_and_close_to_sequential() {
        for n in [0, 1, 3, 4, 5, 64, 301] {
            let v = data(n);
            let (s1, q1) = moments_sums(&v);
            let (s2, q2) = moments_sums(&v.clone());
            // Bitwise repeatability, not approximate equality.
            assert_eq!(s1.to_bits(), s2.to_bits(), "len {n}");
            assert_eq!(q1.to_bits(), q2.to_bits(), "len {n}");
            let (mut ss, mut qq) = (0.0f64, 0.0f64);
            let mut abs_s = 0.0f64;
            for &x in &v {
                let x = x as f64;
                ss += x;
                qq += x * x;
                abs_s += x.abs();
            }
            let tol_s = (n as f64) * f64::EPSILON * abs_s;
            let tol_q = (n as f64) * f64::EPSILON * qq.abs();
            assert!((s1 - ss).abs() <= tol_s, "sum len {n}: {s1} vs {ss}");
            assert!((q1 - qq).abs() <= tol_q, "sum_sq len {n}: {q1} vs {qq}");
        }
    }
}
