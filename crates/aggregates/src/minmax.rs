//! Min/max-family aggregations: min, max, min-count, max-count, arg-min,
//! arg-max.
//!
//! All are distributive (or algebraic with small fixed partials),
//! commutative, and **not invertible** — yet the paper observes (Figure 13)
//! that their count-window throughput barely degrades because most removals
//! do not touch the extremum and thus skip recomputation. Our slicing core
//! reproduces that behaviour: `invert` returns `Some` when the removed
//! partial provably does not affect the aggregate, and `None` (forcing a
//! recompute) only when it might.

use gss_core::{AggregateFunction, FunctionKind, FunctionProperties, HeapSize};

/// Minimum. Distributive, commutative, not invertible — but removals of
/// values above the minimum are free.
#[derive(Debug, Clone, Copy, Default)]
pub struct Min;

impl AggregateFunction for Min {
    type Input = i64;
    type Partial = i64;
    type Output = i64;

    fn lift(&self, v: &i64) -> i64 {
        *v
    }
    fn combine(&self, a: i64, b: &i64) -> i64 {
        a.min(*b)
    }
    fn lower(&self, p: &i64) -> i64 {
        *p
    }
    fn invert(&self, a: i64, b: &i64) -> Option<i64> {
        // Removing a value strictly above the minimum leaves it unchanged.
        // Removing the minimum itself requires recomputation.
        (*b > a).then_some(a)
    }
    fn properties(&self) -> FunctionProperties {
        FunctionProperties {
            commutative: true,
            invertible: false,
            kind: FunctionKind::Distributive,
        }
    }
    /// Explicit 8-lane reduction ([`crate::lanes::min_i64`]): the naive
    /// contiguous `fold(min)` is exactly the reduction idiom LLVM fails to
    /// recognize, so the lane split makes the vector shape explicit rather
    /// than hoping. Exact — see the [`crate::lanes`] policy.
    fn fold_slice(&self, values: &[i64]) -> Option<i64> {
        crate::lanes::min_i64(values)
    }
    fn has_fold_kernel(&self) -> bool {
        true
    }
}

/// Maximum. Mirror image of [`Min`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Max;

impl AggregateFunction for Max {
    type Input = i64;
    type Partial = i64;
    type Output = i64;

    fn lift(&self, v: &i64) -> i64 {
        *v
    }
    fn combine(&self, a: i64, b: &i64) -> i64 {
        a.max(*b)
    }
    fn lower(&self, p: &i64) -> i64 {
        *p
    }
    fn invert(&self, a: i64, b: &i64) -> Option<i64> {
        (*b < a).then_some(a)
    }
    fn properties(&self) -> FunctionProperties {
        FunctionProperties {
            commutative: true,
            invertible: false,
            kind: FunctionKind::Distributive,
        }
    }
    /// Mirror of [`Min::fold_slice`] via [`crate::lanes::max_i64`].
    fn fold_slice(&self, values: &[i64]) -> Option<i64> {
        crate::lanes::max_i64(values)
    }
    fn has_fold_kernel(&self) -> bool {
        true
    }
}

/// Partial for [`MinCount`]/[`MaxCount`]: the extremum and how many tuples
/// attain it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExtremumCount {
    pub value: i64,
    pub count: u64,
}

impl HeapSize for ExtremumCount {
    fn heap_bytes(&self) -> usize {
        0
    }
}

/// Minimum plus the number of tuples attaining it. Algebraic.
#[derive(Debug, Clone, Copy, Default)]
pub struct MinCount;

impl AggregateFunction for MinCount {
    type Input = i64;
    type Partial = ExtremumCount;
    type Output = (i64, u64);

    fn lift(&self, v: &i64) -> ExtremumCount {
        ExtremumCount { value: *v, count: 1 }
    }
    fn combine(&self, a: ExtremumCount, b: &ExtremumCount) -> ExtremumCount {
        match a.value.cmp(&b.value) {
            std::cmp::Ordering::Less => a,
            std::cmp::Ordering::Greater => *b,
            std::cmp::Ordering::Equal => ExtremumCount { value: a.value, count: a.count + b.count },
        }
    }
    fn lower(&self, p: &ExtremumCount) -> (i64, u64) {
        (p.value, p.count)
    }
    fn invert(&self, a: ExtremumCount, b: &ExtremumCount) -> Option<ExtremumCount> {
        if b.value > a.value {
            Some(a)
        } else if b.value == a.value && b.count < a.count {
            Some(ExtremumCount { value: a.value, count: a.count - b.count })
        } else {
            None
        }
    }
    fn properties(&self) -> FunctionProperties {
        FunctionProperties { commutative: true, invertible: false, kind: FunctionKind::Algebraic }
    }
    /// Two vectorizable passes ([`crate::lanes::min_count_i64`]): lane
    /// minimum, then a branch-free tie count — replacing the per-element
    /// three-way compare. Exact and order-insensitive.
    fn fold_slice(&self, values: &[i64]) -> Option<ExtremumCount> {
        crate::lanes::min_count_i64(values).map(|(value, count)| ExtremumCount { value, count })
    }
    fn has_fold_kernel(&self) -> bool {
        true
    }
}

/// Maximum plus the number of tuples attaining it. Algebraic.
#[derive(Debug, Clone, Copy, Default)]
pub struct MaxCount;

impl AggregateFunction for MaxCount {
    type Input = i64;
    type Partial = ExtremumCount;
    type Output = (i64, u64);

    fn lift(&self, v: &i64) -> ExtremumCount {
        ExtremumCount { value: *v, count: 1 }
    }
    fn combine(&self, a: ExtremumCount, b: &ExtremumCount) -> ExtremumCount {
        match a.value.cmp(&b.value) {
            std::cmp::Ordering::Greater => a,
            std::cmp::Ordering::Less => *b,
            std::cmp::Ordering::Equal => ExtremumCount { value: a.value, count: a.count + b.count },
        }
    }
    fn lower(&self, p: &ExtremumCount) -> (i64, u64) {
        (p.value, p.count)
    }
    fn invert(&self, a: ExtremumCount, b: &ExtremumCount) -> Option<ExtremumCount> {
        if b.value < a.value {
            Some(a)
        } else if b.value == a.value && b.count < a.count {
            Some(ExtremumCount { value: a.value, count: a.count - b.count })
        } else {
            None
        }
    }
    fn properties(&self) -> FunctionProperties {
        FunctionProperties { commutative: true, invertible: false, kind: FunctionKind::Algebraic }
    }
    /// Mirror of [`MinCount::fold_slice`] via
    /// [`crate::lanes::max_count_i64`].
    fn fold_slice(&self, values: &[i64]) -> Option<ExtremumCount> {
        crate::lanes::max_count_i64(values).map(|(value, count)| ExtremumCount { value, count })
    }
    fn has_fold_kernel(&self) -> bool {
        true
    }
}

/// Partial for [`ArgMin`]/[`ArgMax`]: the extremum value and the argument
/// (e.g. sensor id, position) attaining it; ties keep the smallest
/// argument, making combination commutative.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArgExtremum {
    pub value: i64,
    pub arg: i64,
}

impl HeapSize for ArgExtremum {
    fn heap_bytes(&self) -> usize {
        0
    }
}

/// Argument of the minimum: input tuples are `(value, arg)` pairs; ties
/// keep the smallest argument (a deterministic, commutative tie-break, so
/// out-of-order tuples never force recomputation). Algebraic.
#[derive(Debug, Clone, Copy, Default)]
pub struct ArgMin;

impl AggregateFunction for ArgMin {
    type Input = (i64, i64);
    type Partial = ArgExtremum;
    type Output = i64;

    fn lift(&self, (v, arg): &(i64, i64)) -> ArgExtremum {
        ArgExtremum { value: *v, arg: *arg }
    }
    fn combine(&self, a: ArgExtremum, b: &ArgExtremum) -> ArgExtremum {
        match b.value.cmp(&a.value) {
            std::cmp::Ordering::Less => *b,
            std::cmp::Ordering::Greater => a,
            std::cmp::Ordering::Equal => {
                if b.arg < a.arg {
                    *b
                } else {
                    a
                }
            }
        }
    }
    fn lower(&self, p: &ArgExtremum) -> i64 {
        p.arg
    }
    fn invert(&self, a: ArgExtremum, b: &ArgExtremum) -> Option<ArgExtremum> {
        (b.value > a.value || (b.value == a.value && b.arg > a.arg)).then_some(a)
    }
    fn properties(&self) -> FunctionProperties {
        FunctionProperties { commutative: true, invertible: false, kind: FunctionKind::Algebraic }
    }
    /// Paired-column kernel ([`crate::lanes::arg_min_pairs`]); the input
    /// pairs are self-contained, so the record-time column is unused. The
    /// lexicographic tie-break (smallest `arg` among equal values) is a
    /// total order, so the lane split is exact — bit-identical to the
    /// per-element fold including ties.
    fn fold_slice_pairs(
        &self,
        _times: &[gss_core::Time],
        values: &[(i64, i64)],
    ) -> Option<ArgExtremum> {
        crate::lanes::arg_min_pairs(values).map(|(value, arg)| ArgExtremum { value, arg })
    }
    fn has_pair_kernel(&self) -> bool {
        true
    }
    /// The per-element path pays a branchy three-way compare per tuple, so
    /// the lane kernel breaks even well below the default gather threshold
    /// despite copying 16-byte pairs.
    fn kernel_min_run(&self) -> usize {
        8
    }
}

/// Argument of the maximum; ties keep the smallest argument. Algebraic.
#[derive(Debug, Clone, Copy, Default)]
pub struct ArgMax;

impl AggregateFunction for ArgMax {
    type Input = (i64, i64);
    type Partial = ArgExtremum;
    type Output = i64;

    fn lift(&self, (v, arg): &(i64, i64)) -> ArgExtremum {
        ArgExtremum { value: *v, arg: *arg }
    }
    fn combine(&self, a: ArgExtremum, b: &ArgExtremum) -> ArgExtremum {
        match b.value.cmp(&a.value) {
            std::cmp::Ordering::Greater => *b,
            std::cmp::Ordering::Less => a,
            std::cmp::Ordering::Equal => {
                if b.arg < a.arg {
                    *b
                } else {
                    a
                }
            }
        }
    }
    fn lower(&self, p: &ArgExtremum) -> i64 {
        p.arg
    }
    fn invert(&self, a: ArgExtremum, b: &ArgExtremum) -> Option<ArgExtremum> {
        (b.value < a.value || (b.value == a.value && b.arg > a.arg)).then_some(a)
    }
    fn properties(&self) -> FunctionProperties {
        FunctionProperties { commutative: true, invertible: false, kind: FunctionKind::Algebraic }
    }
    /// Mirror of [`ArgMin::fold_slice_pairs`] via
    /// [`crate::lanes::arg_max_pairs`].
    fn fold_slice_pairs(
        &self,
        _times: &[gss_core::Time],
        values: &[(i64, i64)],
    ) -> Option<ArgExtremum> {
        crate::lanes::arg_max_pairs(values).map(|(value, arg)| ArgExtremum { value, arg })
    }
    fn has_pair_kernel(&self) -> bool {
        true
    }
    /// See [`ArgMin::kernel_min_run`].
    fn kernel_min_run(&self) -> usize {
        8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn min_max_fold() {
        assert_eq!(Min.lift_all([&3, &1, &2].into_iter()), Some(1));
        assert_eq!(Max.lift_all([&3, &1, &2].into_iter()), Some(3));
    }

    #[test]
    fn min_invert_fast_path() {
        // Removing a non-minimum is free; removing the minimum forces a
        // recompute (None).
        assert_eq!(Min.invert(1, &5), Some(1));
        assert_eq!(Min.invert(1, &1), None);
        assert_eq!(Max.invert(9, &3), Some(9));
        assert_eq!(Max.invert(9, &9), None);
    }

    #[test]
    fn mincount_counts_ties() {
        let f = MinCount;
        let p = f.lift_all([&4, &2, &2, &7]).unwrap();
        assert_eq!(f.lower(&p), (2, 2));
    }

    #[test]
    fn mincount_invert_cases() {
        let f = MinCount;
        let p = ExtremumCount { value: 2, count: 2 };
        // Removing a larger value: free.
        assert_eq!(f.invert(p, &ExtremumCount { value: 9, count: 1 }), Some(p));
        // Removing one of two minima: decrement.
        assert_eq!(
            f.invert(p, &ExtremumCount { value: 2, count: 1 }),
            Some(ExtremumCount { value: 2, count: 1 })
        );
        // Removing all minima: recompute.
        assert_eq!(f.invert(p, &ExtremumCount { value: 2, count: 2 }), None);
    }

    #[test]
    fn maxcount_mirror() {
        let f = MaxCount;
        let p = f.lift_all([&4, &7, &7, &1]).unwrap();
        assert_eq!(f.lower(&p), (7, 2));
    }

    #[test]
    fn argmin_argmax_pick_argument() {
        let f = ArgMin;
        let p = f.lift_all([&(5, 100), &(2, 200), &(9, 300)]).unwrap();
        assert_eq!(f.lower(&p), 200);
        let g = ArgMax;
        let p = g.lift_all([&(5, 100), &(2, 200), &(9, 300)]).unwrap();
        assert_eq!(g.lower(&p), 300);
    }

    #[test]
    fn arg_ties_keep_smallest_argument() {
        let f = ArgMax;
        let p = f.lift_all([&(7, 2), &(7, 1)]).unwrap();
        assert_eq!(f.lower(&p), 1);
        // The deterministic tie-break keeps combination commutative, so
        // out-of-order processing needs no tuple storage for these.
        assert!(f.properties().commutative);
        let a = f.lift(&(7, 2));
        let b = f.lift(&(7, 1));
        assert_eq!(f.combine(a, &b), f.combine(b, &a));
    }

    #[test]
    fn minmax_fold_kernels_match_default() {
        let values: Vec<i64> = (0..257).map(|i| (i * 73 - 9000) % 513).collect();
        assert!(Min.has_fold_kernel() && Max.has_fold_kernel());
        assert!(MinCount.has_fold_kernel() && MaxCount.has_fold_kernel());
        for len in [0, 1, 2, 16, 255, 257] {
            let v = &values[..len];
            assert_eq!(Min.fold_slice(v), gss_core::default_fold_slice(&Min, v));
            assert_eq!(Max.fold_slice(v), gss_core::default_fold_slice(&Max, v));
            assert_eq!(MinCount.fold_slice(v), gss_core::default_fold_slice(&MinCount, v));
            assert_eq!(MaxCount.fold_slice(v), gss_core::default_fold_slice(&MaxCount, v));
        }
    }

    #[test]
    fn arg_pair_kernels_match_default_including_ties() {
        assert!(ArgMin.has_pair_kernel() && ArgMax.has_pair_kernel());
        assert!(!ArgMin.has_fold_kernel(), "kernel lives on the paired hook");
        // Small value range forces plenty of ties across lane boundaries.
        let pairs: Vec<(i64, i64)> = (0..133).map(|i| ((i * 37) % 5, 200 - i)).collect();
        let times: Vec<gss_core::Time> = (0..133).collect();
        for len in [0, 1, 2, 3, 4, 7, 8, 9, 64, 133] {
            let v = &pairs[..len];
            let t = &times[..len];
            assert_eq!(
                ArgMin.fold_slice_pairs(t, v),
                gss_core::default_fold_slice(&ArgMin, v),
                "argmin len {len}"
            );
            assert_eq!(
                ArgMax.fold_slice_pairs(t, v),
                gss_core::default_fold_slice(&ArgMax, v),
                "argmax len {len}"
            );
        }
    }
}
