//! Statistical algebraic aggregations: geometric mean, sample and
//! population standard deviation (the Tangwongsan et al. [42] set the paper
//! benchmarks in Figure 13).

use gss_core::{AggregateFunction, FunctionKind, FunctionProperties, HeapSize};

/// Partial for the geometric mean: `⟨Σ ln(v), count⟩`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct GeoMeanPartial {
    pub ln_sum: f64,
    pub count: u64,
}

impl HeapSize for GeoMeanPartial {
    fn heap_bytes(&self) -> usize {
        0
    }
}

/// Geometric mean over positive values. Algebraic, commutative, invertible.
/// Non-positive inputs contribute `ln` of a tiny epsilon to stay total.
#[derive(Debug, Clone, Copy, Default)]
pub struct GeometricMean;

impl AggregateFunction for GeometricMean {
    type Input = i64;
    type Partial = GeoMeanPartial;
    type Output = f64;

    fn lift(&self, v: &i64) -> GeoMeanPartial {
        let x = (*v as f64).max(f64::MIN_POSITIVE);
        GeoMeanPartial { ln_sum: x.ln(), count: 1 }
    }
    fn combine(&self, a: GeoMeanPartial, b: &GeoMeanPartial) -> GeoMeanPartial {
        GeoMeanPartial { ln_sum: a.ln_sum + b.ln_sum, count: a.count + b.count }
    }
    fn lower(&self, p: &GeoMeanPartial) -> f64 {
        if p.count == 0 {
            f64::NAN
        } else {
            (p.ln_sum / p.count as f64).exp()
        }
    }
    fn invert(&self, a: GeoMeanPartial, b: &GeoMeanPartial) -> Option<GeoMeanPartial> {
        Some(GeoMeanPartial { ln_sum: a.ln_sum - b.ln_sum, count: a.count - b.count })
    }
    fn properties(&self) -> FunctionProperties {
        FunctionProperties { commutative: true, invertible: true, kind: FunctionKind::Algebraic }
    }
}

/// Partial for standard deviations: `⟨count, Σv, Σv²⟩`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct MomentsPartial {
    pub count: u64,
    pub sum: f64,
    pub sum_sq: f64,
}

impl HeapSize for MomentsPartial {
    fn heap_bytes(&self) -> usize {
        0
    }
}

fn lift_moments(v: i64) -> MomentsPartial {
    let x = v as f64;
    MomentsPartial { count: 1, sum: x, sum_sq: x * x }
}

fn combine_moments(a: MomentsPartial, b: &MomentsPartial) -> MomentsPartial {
    MomentsPartial { count: a.count + b.count, sum: a.sum + b.sum, sum_sq: a.sum_sq + b.sum_sq }
}

fn invert_moments(a: MomentsPartial, b: &MomentsPartial) -> MomentsPartial {
    MomentsPartial { count: a.count - b.count, sum: a.sum - b.sum, sum_sq: a.sum_sq - b.sum_sq }
}

/// Bulk kernel for the moments partial: the strided 4-lane `(Σv, Σv²)`
/// reduction of [`crate::lanes::moments_sums`]. A serial f64 accumulator
/// is a loop-carried dependency LLVM may not reassociate, so without the
/// explicit lane split this fold runs at one add per float latency; the
/// lanes trade bit-identity with the sequential fold for a 4-wide
/// pipeline. Per the [`crate::lanes`] reassociation policy the result is
/// still **deterministic** — fixed lane count, fixed strided assignment,
/// fixed pairwise reduction order, in-order tail — and ulp-bounded
/// against the sequential fold (|err| ≤ n·ε·Σ|xᵢ| per sum); `count` stays
/// exact. The proptest grid pins both properties.
fn fold_moments(values: &[i64]) -> Option<MomentsPartial> {
    if values.is_empty() {
        return None;
    }
    let (sum, sum_sq) = crate::lanes::moments_sums(values);
    Some(MomentsPartial { count: gss_core::cast::to_u64(values.len()), sum, sum_sq })
}

/// Sample standard deviation (n − 1 denominator). Algebraic, commutative,
/// invertible.
#[derive(Debug, Clone, Copy, Default)]
pub struct SampleStdDev;

impl AggregateFunction for SampleStdDev {
    type Input = i64;
    type Partial = MomentsPartial;
    type Output = f64;

    fn lift(&self, v: &i64) -> MomentsPartial {
        lift_moments(*v)
    }
    fn combine(&self, a: MomentsPartial, b: &MomentsPartial) -> MomentsPartial {
        combine_moments(a, b)
    }
    fn lower(&self, p: &MomentsPartial) -> f64 {
        if p.count < 2 {
            return f64::NAN;
        }
        let n = p.count as f64;
        (((p.sum_sq - p.sum * p.sum / n) / (n - 1.0)).max(0.0)).sqrt()
    }
    fn invert(&self, a: MomentsPartial, b: &MomentsPartial) -> Option<MomentsPartial> {
        Some(invert_moments(a, b))
    }
    fn properties(&self) -> FunctionProperties {
        FunctionProperties { commutative: true, invertible: true, kind: FunctionKind::Algebraic }
    }
    fn fold_slice(&self, values: &[i64]) -> Option<MomentsPartial> {
        fold_moments(values)
    }
    fn has_fold_kernel(&self) -> bool {
        true
    }
}

/// Population standard deviation (n denominator). Algebraic, commutative,
/// invertible.
#[derive(Debug, Clone, Copy, Default)]
pub struct PopulationStdDev;

impl AggregateFunction for PopulationStdDev {
    type Input = i64;
    type Partial = MomentsPartial;
    type Output = f64;

    fn lift(&self, v: &i64) -> MomentsPartial {
        lift_moments(*v)
    }
    fn combine(&self, a: MomentsPartial, b: &MomentsPartial) -> MomentsPartial {
        combine_moments(a, b)
    }
    fn lower(&self, p: &MomentsPartial) -> f64 {
        if p.count == 0 {
            return f64::NAN;
        }
        let n = p.count as f64;
        (((p.sum_sq - p.sum * p.sum / n) / n).max(0.0)).sqrt()
    }
    fn invert(&self, a: MomentsPartial, b: &MomentsPartial) -> Option<MomentsPartial> {
        Some(invert_moments(a, b))
    }
    fn properties(&self) -> FunctionProperties {
        FunctionProperties { commutative: true, invertible: true, kind: FunctionKind::Algebraic }
    }
    fn fold_slice(&self, values: &[i64]) -> Option<MomentsPartial> {
        fold_moments(values)
    }
    fn has_fold_kernel(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_sample_stddev(vs: &[i64]) -> f64 {
        let n = vs.len() as f64;
        let mean = vs.iter().sum::<i64>() as f64 / n;
        (vs.iter().map(|&v| (v as f64 - mean).powi(2)).sum::<f64>() / (n - 1.0)).sqrt()
    }

    #[test]
    fn geometric_mean_matches_definition() {
        let f = GeometricMean;
        let p = f.lift_all([&2, &8]).unwrap();
        assert!((f.lower(&p) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn geometric_mean_invert() {
        let f = GeometricMean;
        let ab = f.combine(f.lift(&2), &f.lift(&8));
        let a = f.invert(ab, &f.lift(&8)).unwrap();
        assert!((f.lower(&a) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn sample_stddev_matches_naive() {
        let vs = [3, 7, 7, 19, 24, 1, 1, 1];
        let f = SampleStdDev;
        let p = f.lift_all(vs.iter()).unwrap();
        assert!((f.lower(&p) - naive_sample_stddev(&vs)).abs() < 1e-9);
    }

    #[test]
    fn population_stddev_of_constant_is_zero() {
        let f = PopulationStdDev;
        let p = f.lift_all([&5, &5, &5]).unwrap();
        assert!(f.lower(&p).abs() < 1e-12);
    }

    #[test]
    fn stddev_undefined_cases_are_nan() {
        assert!(SampleStdDev.lower(&MomentsPartial::default()).is_nan());
        assert!(SampleStdDev.lower(&lift_moments(5)).is_nan());
        assert!(PopulationStdDev.lower(&MomentsPartial::default()).is_nan());
    }

    #[test]
    fn moments_fold_kernel_is_deterministic_and_ulp_bounded() {
        // The lane-split kernel reassociates f64 adds, so bit-identity
        // with the sequential fold is deliberately NOT required; the
        // policy (see `crate::lanes`) is bitwise repeatability plus the
        // standard summation error bound against the sequential fold.
        let values: Vec<i64> = (0..300).map(|i| (i * 31 - 4000) % 977).collect();
        for len in [0, 1, 2, 3, 4, 5, 16, 128, 300] {
            let v = &values[..len];
            let Some(k) = SampleStdDev.fold_slice(v) else {
                assert_eq!(len, 0);
                continue;
            };
            // Determinism: same bits on every call (and on a fresh copy).
            let copy = v.to_vec();
            let again = SampleStdDev.fold_slice(&copy).unwrap();
            assert_eq!(k.sum.to_bits(), again.sum.to_bits());
            assert_eq!(k.sum_sq.to_bits(), again.sum_sq.to_bits());
            assert_eq!(PopulationStdDev.fold_slice(v), Some(k), "shared moments kernel");
            // Ulp bound vs the sequential reference fold.
            let seq = gss_core::default_fold_slice(&SampleStdDev, v).unwrap();
            assert_eq!(k.count, seq.count, "count must stay exact");
            let abs_sum: f64 = v.iter().map(|&x| (x as f64).abs()).sum();
            let tol_sum = (len as f64) * f64::EPSILON * abs_sum;
            let tol_sq = (len as f64) * f64::EPSILON * seq.sum_sq;
            assert!((k.sum - seq.sum).abs() <= tol_sum, "len {len}: {} vs {}", k.sum, seq.sum);
            assert!(
                (k.sum_sq - seq.sum_sq).abs() <= tol_sq,
                "len {len}: {} vs {}",
                k.sum_sq,
                seq.sum_sq
            );
        }
        assert!(SampleStdDev.has_fold_kernel() && PopulationStdDev.has_fold_kernel());
    }

    #[test]
    fn moments_invert_roundtrip() {
        let f = SampleStdDev;
        let a = f.lift_all([&1, &2, &3]).unwrap();
        let b = f.lift(&4);
        let ab = f.combine(a, &b);
        let back = f.invert(ab, &b).unwrap();
        assert_eq!(back, a);
    }
}
