//! Distributive and algebraic basics: count, sum, average.
//!
//! Each function overrides [`AggregateFunction::fold_slice`] with a bulk
//! kernel: a tight loop over the contiguous `&[i64]` input with no
//! per-element branches and no `Option` accumulator, which the compiler
//! auto-vectorizes. The kernels are bit-for-bit equivalent to the default
//! lift/combine fold (integer `+` is associative and commutative), which
//! the `fold_kernels_match_default` test and the proptest equivalence grid
//! both pin.

use gss_core::{cast, AggregateFunction, FunctionKind, FunctionProperties};

/// Integer-sum kernel shared by [`Sum`] and [`SumNoInvert`]: a plain
/// reduction loop with a bare accumulator, vectorizable because there is
/// no per-element `Option` check or branch.
#[inline]
fn sum_kernel(values: &[i64]) -> Option<i64> {
    if values.is_empty() {
        return None;
    }
    let mut acc = 0i64;
    for &v in values {
        acc += v;
    }
    Some(acc)
}

/// Tuple count. Distributive, commutative, invertible.
#[derive(Debug, Clone, Copy, Default)]
pub struct CountAgg;

impl AggregateFunction for CountAgg {
    type Input = i64;
    type Partial = u64;
    type Output = u64;

    fn lift(&self, _v: &i64) -> u64 {
        1
    }
    fn combine(&self, a: u64, b: &u64) -> u64 {
        a + b
    }
    fn lower(&self, p: &u64) -> u64 {
        *p
    }
    fn invert(&self, a: u64, b: &u64) -> Option<u64> {
        Some(a - b)
    }
    fn properties(&self) -> FunctionProperties {
        FunctionProperties { commutative: true, invertible: true, kind: FunctionKind::Distributive }
    }
    /// A count over a run is its length — the degenerate kernel.
    fn fold_slice(&self, values: &[i64]) -> Option<u64> {
        (!values.is_empty()).then(|| cast::to_u64(values.len()))
    }
    fn has_fold_kernel(&self) -> bool {
        true
    }
}

/// Integer sum. Distributive, commutative, invertible.
#[derive(Debug, Clone, Copy, Default)]
pub struct Sum;

impl AggregateFunction for Sum {
    type Input = i64;
    type Partial = i64;
    type Output = i64;

    fn lift(&self, v: &i64) -> i64 {
        *v
    }
    fn combine(&self, a: i64, b: &i64) -> i64 {
        a + b
    }
    fn lower(&self, p: &i64) -> i64 {
        *p
    }
    fn invert(&self, a: i64, b: &i64) -> Option<i64> {
        Some(a - b)
    }
    fn properties(&self) -> FunctionProperties {
        FunctionProperties { commutative: true, invertible: true, kind: FunctionKind::Distributive }
    }
    fn fold_slice(&self, values: &[i64]) -> Option<i64> {
        sum_kernel(values)
    }
    fn has_fold_kernel(&self) -> bool {
        true
    }
}

/// Integer sum that does **not** declare invertibility — the "sum w/o
/// invert" baseline of paper Figure 13, standing in for arbitrary
/// non-invertible aggregations whose removals always force recomputation.
#[derive(Debug, Clone, Copy, Default)]
pub struct SumNoInvert;

impl AggregateFunction for SumNoInvert {
    type Input = i64;
    type Partial = i64;
    type Output = i64;

    fn lift(&self, v: &i64) -> i64 {
        *v
    }
    fn combine(&self, a: i64, b: &i64) -> i64 {
        a + b
    }
    fn lower(&self, p: &i64) -> i64 {
        *p
    }
    fn properties(&self) -> FunctionProperties {
        FunctionProperties {
            commutative: true,
            invertible: false,
            kind: FunctionKind::Distributive,
        }
    }
    fn fold_slice(&self, values: &[i64]) -> Option<i64> {
        sum_kernel(values)
    }
    fn has_fold_kernel(&self) -> bool {
        true
    }
}

/// Partial aggregate of an average: `⟨sum, count⟩` (the paper's Section
/// 5.4.1 example).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct AvgPartial {
    pub sum: i64,
    pub count: u64,
}

impl gss_core::HeapSize for AvgPartial {
    fn heap_bytes(&self) -> usize {
        0
    }
}

/// Arithmetic mean. Algebraic (fixed-size partial), commutative,
/// invertible.
#[derive(Debug, Clone, Copy, Default)]
pub struct Avg;

impl AggregateFunction for Avg {
    type Input = i64;
    type Partial = AvgPartial;
    type Output = f64;

    fn lift(&self, v: &i64) -> AvgPartial {
        AvgPartial { sum: *v, count: 1 }
    }
    fn combine(&self, a: AvgPartial, b: &AvgPartial) -> AvgPartial {
        AvgPartial { sum: a.sum + b.sum, count: a.count + b.count }
    }
    fn lower(&self, p: &AvgPartial) -> f64 {
        if p.count == 0 {
            f64::NAN
        } else {
            p.sum as f64 / p.count as f64
        }
    }
    fn invert(&self, a: AvgPartial, b: &AvgPartial) -> Option<AvgPartial> {
        Some(AvgPartial { sum: a.sum - b.sum, count: a.count - b.count })
    }
    fn properties(&self) -> FunctionProperties {
        FunctionProperties { commutative: true, invertible: true, kind: FunctionKind::Algebraic }
    }
    /// One vectorized sum pass; the count is the run length.
    fn fold_slice(&self, values: &[i64]) -> Option<AvgPartial> {
        let sum = sum_kernel(values)?;
        Some(AvgPartial { sum, count: cast::to_u64(values.len()) })
    }
    fn has_fold_kernel(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_counts() {
        let c = CountAgg;
        let p = c.lift_all([&5, &6, &7]).unwrap();
        assert_eq!(c.lower(&p), 3);
        assert_eq!(c.invert(p, &1), Some(2));
    }

    #[test]
    fn sum_laws() {
        let s = Sum;
        // Associativity on a few values.
        for (a, b, c) in [(1, 2, 3), (-5, 9, 0), (100, -100, 7)] {
            let left = s.combine(s.combine(a, &b), &c);
            let right = s.combine(a, &s.combine(b, &c));
            assert_eq!(left, right);
            assert_eq!(s.combine(a, &b), s.combine(b, &a));
            assert_eq!(s.invert(s.combine(a, &b), &b), Some(a));
        }
    }

    #[test]
    fn avg_lowers_to_mean() {
        let f = Avg;
        let p = f.lift_all([&2, &4, &9]).unwrap();
        assert_eq!(p, AvgPartial { sum: 15, count: 3 });
        assert!((f.lower(&p) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn avg_of_empty_is_nan() {
        let f = Avg;
        assert!(f.lower(&AvgPartial::default()).is_nan());
    }

    #[test]
    fn avg_invert_removes_partial() {
        let f = Avg;
        let ab = f.combine(f.lift(&10), &f.lift(&20));
        let a = f.invert(ab, &f.lift(&20)).unwrap();
        assert_eq!(a, f.lift(&10));
    }

    #[test]
    fn sum_no_invert_property_flags() {
        assert!(!SumNoInvert.properties().invertible);
        assert_eq!(SumNoInvert.invert(5, &3), None);
        assert_eq!(SumNoInvert.properties().kind, FunctionKind::Distributive);
    }

    #[test]
    fn fold_kernels_match_default() {
        let values: Vec<i64> = (0..257).map(|i| (i * 37 - 500) % 91).collect();
        assert!(CountAgg.has_fold_kernel() && Sum.has_fold_kernel() && Avg.has_fold_kernel());
        for len in [0, 1, 2, 15, 16, 17, 256, 257] {
            let v = &values[..len];
            assert_eq!(Sum.fold_slice(v), gss_core::default_fold_slice(&Sum, v));
            assert_eq!(SumNoInvert.fold_slice(v), gss_core::default_fold_slice(&SumNoInvert, v));
            assert_eq!(CountAgg.fold_slice(v), gss_core::default_fold_slice(&CountAgg, v));
            assert_eq!(Avg.fold_slice(v), gss_core::default_fold_slice(&Avg, v));
        }
    }
}
