//! Holistic aggregations: median and percentiles.
//!
//! Holistic functions have unbounded partial aggregates (paper Section
//! 4.2). Following the paper's implementation notes (Section 5.4.1), slice
//! partials keep their values **sorted** to speed up merge operations and
//! apply **run-length encoding** to save memory — which is why the machine
//! dataset (37 distinct values) aggregates faster than the football dataset
//! (84 232 distinct values) in Figure 14.

use gss_core::{AggregateFunction, FunctionKind, FunctionProperties, HeapSize};

/// A sorted, run-length-encoded multiset of values: `(value, count)` pairs
/// in strictly increasing value order.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SortedRle {
    runs: Vec<(i64, u32)>,
    len: u64,
}

impl SortedRle {
    /// The multiset holding a single value.
    pub fn singleton(v: i64) -> Self {
        SortedRle { runs: vec![(v, 1)], len: 1 }
    }

    /// Total number of values (with multiplicity).
    pub fn len(&self) -> u64 {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of runs (distinct values).
    pub fn distinct(&self) -> usize {
        self.runs.len()
    }

    /// Merges two sorted RLE multisets (linear in the number of runs —
    /// the fast merge the paper's sorted slices enable).
    pub fn merge(mut self, other: &SortedRle) -> SortedRle {
        if other.is_empty() {
            return self;
        }
        if self.is_empty() {
            return other.clone();
        }
        let mut merged = Vec::with_capacity(self.runs.len() + other.runs.len());
        let mut i = 0;
        let mut j = 0;
        while i < self.runs.len() && j < other.runs.len() {
            let (va, ca) = self.runs[i];
            let (vb, cb) = other.runs[j];
            match va.cmp(&vb) {
                std::cmp::Ordering::Less => {
                    merged.push((va, ca));
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    merged.push((vb, cb));
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    merged.push((va, ca + cb));
                    i += 1;
                    j += 1;
                }
            }
        }
        merged.extend_from_slice(&self.runs[i..]);
        merged.extend_from_slice(&other.runs[j..]);
        self.runs = merged;
        self.len += other.len;
        self
    }

    /// The `k`-th smallest value, 1-indexed (nearest-rank selection).
    pub fn select(&self, k: u64) -> Option<i64> {
        if k == 0 || k > self.len {
            return None;
        }
        let mut remaining = k;
        for &(v, c) in &self.runs {
            if remaining <= c as u64 {
                return Some(v);
            }
            remaining -= c as u64;
        }
        None
    }
}

impl HeapSize for SortedRle {
    fn heap_bytes(&self) -> usize {
        self.runs.heap_bytes()
    }
}

/// Nearest-rank percentile (`0 < p <= 1`). Holistic, commutative (sorted
/// merge), not invertible.
#[derive(Debug, Clone, Copy)]
pub struct Percentile {
    p: f64,
}

impl Percentile {
    /// Creates a percentile aggregation; `p` is clamped to `(0, 1]`.
    pub fn new(p: f64) -> Self {
        Percentile { p: p.clamp(f64::MIN_POSITIVE, 1.0) }
    }

    /// The 90th percentile used in paper Figure 13.
    pub fn p90() -> Self {
        Percentile::new(0.9)
    }
}

impl AggregateFunction for Percentile {
    type Input = i64;
    type Partial = SortedRle;
    type Output = i64;

    fn lift(&self, v: &i64) -> SortedRle {
        SortedRle::singleton(*v)
    }
    fn combine(&self, a: SortedRle, b: &SortedRle) -> SortedRle {
        a.merge(b)
    }
    fn lower(&self, p: &SortedRle) -> i64 {
        let k = ((self.p * p.len() as f64).ceil() as u64).max(1);
        p.select(k).unwrap_or(0)
    }
    fn properties(&self) -> FunctionProperties {
        FunctionProperties { commutative: true, invertible: false, kind: FunctionKind::Holistic }
    }
}

/// Median: nearest-rank 50th percentile. Holistic.
#[derive(Debug, Clone, Copy, Default)]
pub struct Median;

impl AggregateFunction for Median {
    type Input = i64;
    type Partial = SortedRle;
    type Output = i64;

    fn lift(&self, v: &i64) -> SortedRle {
        SortedRle::singleton(*v)
    }
    fn combine(&self, a: SortedRle, b: &SortedRle) -> SortedRle {
        a.merge(b)
    }
    fn lower(&self, p: &SortedRle) -> i64 {
        let k = p.len().div_ceil(2);
        p.select(k.max(1)).unwrap_or(0)
    }
    fn properties(&self) -> FunctionProperties {
        FunctionProperties { commutative: true, invertible: false, kind: FunctionKind::Holistic }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rle_merges_and_compresses() {
        let a = SortedRle::singleton(5).merge(&SortedRle::singleton(5));
        assert_eq!(a.len(), 2);
        assert_eq!(a.distinct(), 1);
        let b = a.merge(&SortedRle::singleton(3));
        assert_eq!(b.len(), 3);
        assert_eq!(b.distinct(), 2);
        assert_eq!(b.select(1), Some(3));
        assert_eq!(b.select(2), Some(5));
        assert_eq!(b.select(3), Some(5));
        assert_eq!(b.select(4), None);
        assert_eq!(b.select(0), None);
    }

    #[test]
    fn median_matches_sorting() {
        let f = Median;
        let values = [9, 1, 8, 2, 7, 3, 6, 4, 5];
        let p = f.lift_all(values.iter()).unwrap();
        assert_eq!(f.lower(&p), 5);
    }

    #[test]
    fn median_even_count_takes_lower_middle() {
        let f = Median;
        let p = f.lift_all([&1, &2, &3, &4]).unwrap();
        assert_eq!(f.lower(&p), 2);
    }

    #[test]
    fn percentile_nearest_rank() {
        let f = Percentile::new(0.9);
        let values: Vec<i64> = (1..=100).collect();
        let p = f.lift_all(values.iter()).unwrap();
        assert_eq!(f.lower(&p), 90);
        let f50 = Percentile::new(0.5);
        assert_eq!(f50.lower(&p), 50);
        let f100 = Percentile::new(1.0);
        assert_eq!(f100.lower(&p), 100);
    }

    #[test]
    fn merge_is_commutative_and_associative() {
        let f = Median;
        let a = f.lift_all([&3, &1]).unwrap();
        let b = f.lift_all([&2, &2]).unwrap();
        let c = f.lift_all([&9]).unwrap();
        assert_eq!(f.combine(a.clone(), &b), f.combine(b.clone(), &a));
        assert_eq!(
            f.combine(f.combine(a.clone(), &b), &c),
            f.combine(a, &f.combine(b.clone(), &c))
        );
    }

    #[test]
    fn rle_compression_bounds_memory_by_distinct_values() {
        // The machine dataset effect: many duplicates, few runs.
        let f = Median;
        let mut p = SortedRle::default();
        for i in 0..1000i64 {
            p = f.combine(p, &SortedRle::singleton(i % 37));
        }
        assert_eq!(p.len(), 1000);
        assert_eq!(p.distinct(), 37);
    }
}

/// A plain sorted multiset without run-length encoding — the ablation
/// counterpart of [`SortedRle`] (the paper's Section 5.4.1 notes sorting +
/// RLE as deliberate design choices; `MedianNoRle` isolates their effect).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SortedVec {
    values: Vec<i64>,
}

impl SortedVec {
    pub fn singleton(v: i64) -> Self {
        SortedVec { values: vec![v] }
    }

    pub fn len(&self) -> usize {
        self.values.len()
    }

    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Linear merge of two sorted vectors (no compression).
    pub fn merge(mut self, other: &SortedVec) -> SortedVec {
        let mut merged = Vec::with_capacity(self.values.len() + other.values.len());
        let (mut i, mut j) = (0, 0);
        while i < self.values.len() && j < other.values.len() {
            if self.values[i] <= other.values[j] {
                merged.push(self.values[i]);
                i += 1;
            } else {
                merged.push(other.values[j]);
                j += 1;
            }
        }
        merged.extend_from_slice(&self.values[i..]);
        merged.extend_from_slice(&other.values[j..]);
        self.values = merged;
        self
    }

    pub fn select(&self, k: usize) -> Option<i64> {
        (k >= 1 && k <= self.values.len()).then(|| self.values[k - 1])
    }
}

impl HeapSize for SortedVec {
    fn heap_bytes(&self) -> usize {
        self.values.heap_bytes()
    }
}

/// Median over plain sorted vectors — identical results to [`Median`],
/// without the run-length encoding. Exists for the RLE ablation
/// (`gss-bench --bin ablation`); prefer [`Median`] in applications.
#[derive(Debug, Clone, Copy, Default)]
pub struct MedianNoRle;

impl AggregateFunction for MedianNoRle {
    type Input = i64;
    type Partial = SortedVec;
    type Output = i64;

    fn lift(&self, v: &i64) -> SortedVec {
        SortedVec::singleton(*v)
    }
    fn combine(&self, a: SortedVec, b: &SortedVec) -> SortedVec {
        a.merge(b)
    }
    fn lower(&self, p: &SortedVec) -> i64 {
        let k = p.len().div_ceil(2);
        p.select(k.max(1)).unwrap_or(0)
    }
    fn properties(&self) -> FunctionProperties {
        FunctionProperties { commutative: true, invertible: false, kind: FunctionKind::Holistic }
    }
}

#[cfg(test)]
mod norle_tests {
    use super::*;

    #[test]
    fn matches_rle_median_on_any_input() {
        let values: Vec<i64> = (0..500).map(|i| (i * 31) % 37).collect();
        let rle = Median.lift_all(values.iter()).unwrap();
        let plain = MedianNoRle.lift_all(values.iter()).unwrap();
        assert_eq!(Median.lower(&rle), MedianNoRle.lower(&plain));
        assert_eq!(rle.len() as usize, plain.len());
    }

    #[test]
    fn rle_uses_less_memory_on_low_cardinality_data() {
        // The machine-dataset effect: 37 distinct values out of 10 000.
        let values: Vec<i64> = (0..10_000).map(|i| i % 37).collect();
        let rle = Median.lift_all(values.iter()).unwrap();
        let plain = MedianNoRle.lift_all(values.iter()).unwrap();
        assert!(
            rle.heap_bytes() * 10 < plain.heap_bytes(),
            "rle {} vs plain {}",
            rle.heap_bytes(),
            plain.heap_bytes()
        );
    }

    #[test]
    fn merge_keeps_sorted_order() {
        let a = MedianNoRle.lift_all([&5, &1, &9]).unwrap();
        let b = MedianNoRle.lift_all([&3, &7]).unwrap();
        let m = MedianNoRle.combine(a, &b);
        assert_eq!(m.select(1), Some(1));
        assert_eq!(m.select(3), Some(5));
        assert_eq!(m.select(5), Some(9));
        assert_eq!(m.select(6), None);
        assert_eq!(m.select(0), None);
    }
}
