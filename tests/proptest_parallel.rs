//! Property tests for intra-query parallel slicing: `run_parallel` must
//! agree with a sequential [`WindowOperator`] across window types, stream
//! order, worker counts, batch sizes, store policies, and lateness.
//!
//! What "agree" means (see `crates/stream/src/parallel.rs`):
//!
//! * **Final emissions** (`is_update == false`, produced at watermark
//!   triggers) match exactly, values included — the epoch barrier
//!   guarantees the merge operator holds exactly the stream prefix when
//!   a watermark fires.
//! * **Update emissions** (straggler revisions of already-emitted
//!   windows) match in multiplicity and affected window, and the *last*
//!   value per window matches; intermediate update values may reflect a
//!   different apply order when several stragglers hit the same window
//!   inside one watermark epoch from different workers.
//! * With **one worker** the merge stage sees the exact stream order, so
//!   the full emission sequence matches, values included.
//! * Ineligible workloads (session windows here) take the sequential
//!   fallback and must match exactly.

use std::collections::BTreeMap;

use general_stream_slicing::prelude::*;
use proptest::prelude::*;

const TIME_MIN: Time = i64::MIN;

type Row = (QueryId, Time, Time, i64, bool);

/// Reference: one sequential operator, tuple at a time, under `cfg`.
fn sequential_rows_cfg(
    elements: &[StreamElement<i64>],
    windows: &[Box<dyn WindowFunction>],
    cfg: OperatorConfig,
) -> Vec<Row> {
    let mut op = WindowOperator::new(Sum, cfg);
    for w in windows {
        op.add_query(w.clone_box()).unwrap();
    }
    let mut out = Vec::new();
    let mut rows = Vec::new();
    for e in elements {
        match e {
            StreamElement::Record { ts, value } => op.process_tuple(*ts, *value, &mut out),
            StreamElement::Watermark(wm) => op.process_watermark(*wm, &mut out),
            StreamElement::Punctuation(ts) => op.process_punctuation(*ts, &mut out),
        }
        rows.extend(out.drain(..).map(row));
    }
    rows
}

/// Reference: one sequential out-of-order operator, tuple at a time.
fn sequential_rows(
    elements: &[StreamElement<i64>],
    windows: &[Box<dyn WindowFunction>],
    lateness: Time,
    policy: StorePolicy,
) -> Vec<Row> {
    sequential_rows_cfg(
        elements,
        windows,
        OperatorConfig::out_of_order(lateness).with_policy(policy),
    )
}

fn row(r: WindowResult<i64>) -> Row {
    (r.query, r.range.start, r.range.end, r.value, r.is_update)
}

fn parallel_rows(
    elements: &[StreamElement<i64>],
    windows: &[Box<dyn WindowFunction>],
    lateness: Time,
    policy: StorePolicy,
    workers: usize,
    batch: usize,
) -> (usize, Vec<Row>) {
    let report = run_parallel(
        elements.iter().cloned(),
        PipelineConfig::with_parallelism(workers).with_batch_size(batch),
        Sum,
        windows.iter().map(|w| w.clone_box()).collect(),
        OperatorConfig::out_of_order(lateness).with_policy(policy),
    );
    (report.parallel_workers, report.results.into_iter().map(|(_, r)| row(r)).collect())
}

/// Last emission per window — what a downstream consumer ends up with.
fn finals(rows: &[Row]) -> BTreeMap<(QueryId, Time, Time), i64> {
    let mut map = BTreeMap::new();
    for &(q, s, e, v, _) in rows {
        map.insert((q, s, e), v);
    }
    map
}

fn sorted<T: Ord>(mut v: Vec<T>) -> Vec<T> {
    v.sort_unstable();
    v
}

/// Compares a parallel run against the sequential reference under the
/// documented equivalence contract.
fn assert_equivalent(
    want: &[Row],
    got: &[Row],
    workers: usize,
    batch: usize,
) -> Result<(), TestCaseError> {
    let ctx = format!("workers={workers} batch={batch}");
    prop_assert_eq!(finals(got), finals(want), "finals diverged ({})", ctx);
    let want_final: Vec<Row> = want.iter().filter(|r| !r.4).cloned().collect();
    let got_final: Vec<Row> = got.iter().filter(|r| !r.4).cloned().collect();
    prop_assert_eq!(
        sorted(got_final),
        sorted(want_final),
        "watermark-trigger emissions diverged ({})",
        ctx
    );
    let keys = |rows: &[Row], upd: bool| -> Vec<(QueryId, Time, Time)> {
        sorted(rows.iter().filter(|r| r.4 == upd).map(|r| (r.0, r.1, r.2)).collect())
    };
    prop_assert_eq!(keys(got, true), keys(want, true), "update multiplicity diverged ({})", ctx);
    Ok(())
}

/// Interleaves watermarks: one every `every` records at `max_ts - lag`
/// (monotone), with occasional stale duplicates, plus a final flush.
fn with_stream_watermarks(
    tuples: &[(Time, i64)],
    every: usize,
    lag: Time,
) -> Vec<StreamElement<i64>> {
    let every = every.max(1);
    let mut elements = Vec::with_capacity(tuples.len() + tuples.len() / every + 2);
    let mut max_ts = TIME_MIN;
    for (i, &(ts, v)) in tuples.iter().enumerate() {
        elements.push(StreamElement::Record { ts, value: v });
        max_ts = max_ts.max(ts);
        if i % every == every - 1 {
            elements.push(StreamElement::Watermark(max_ts - lag));
            if i % (3 * every) == every - 1 {
                elements.push(StreamElement::Watermark(max_ts - lag - 1));
            }
        }
    }
    elements.push(StreamElement::Watermark(i64::MAX - 1));
    elements
}

fn time_windows(length: i64, slide: i64) -> Vec<Box<dyn WindowFunction>> {
    vec![
        Box::new(TumblingWindow::new(length)),
        Box::new(SlidingWindow::new(length.max(slide), slide)),
    ]
}

fn check_parallel(
    elements: &[StreamElement<i64>],
    windows: &[Box<dyn WindowFunction>],
    lateness: Time,
    policy: StorePolicy,
    batch: usize,
) -> Result<(), TestCaseError> {
    let want = sequential_rows(elements, windows, lateness, policy);
    for workers in [1usize, 2, 4, 8] {
        let (used, got) = parallel_rows(elements, windows, lateness, policy, workers, batch);
        prop_assert_eq!(used, workers, "eligible workload must take the parallel path");
        if workers == 1 {
            // One worker preserves exact stream order through the merge
            // stage: the full emission sequence must match.
            prop_assert_eq!(&got, &want, "single-worker run must match exactly");
        } else {
            assert_equivalent(&want, &got, workers, batch)?;
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(30))]

    /// In-order streams: tumbling + sliding queries, every worker count,
    /// varying batch sizes and watermark cadence.
    #[test]
    fn parallel_matches_sequential_in_order(
        raw in prop::collection::vec((0i64..2_000, -50i64..50), 1..200),
        length in 1i64..50,
        slide in 1i64..50,
        lateness_i in 0usize..3,
        batch in 1usize..70,
        wm_every in 1usize..40,
    ) {
        let lateness = [0i64, 50, 500][lateness_i];
        let mut tuples = raw;
        tuples.sort_by_key(|&(ts, _)| ts);
        let elements = with_stream_watermarks(&tuples, wm_every, 50);
        check_parallel(&elements, &time_windows(length, slide), lateness, StorePolicy::Lazy, batch)?;
    }

    /// Out-of-order streams: random arrival order means stragglers and
    /// allowed-lateness drops on every worker.
    #[test]
    fn parallel_matches_sequential_out_of_order(
        raw in prop::collection::vec((0i64..2_000, -50i64..50), 1..150),
        length in 2i64..50,
        slide in 1i64..30,
        lateness_i in 0usize..3,
        batch in 1usize..70,
        wm_every in 1usize..30,
    ) {
        let lateness = [0i64, 50, 500][lateness_i];
        let elements = with_stream_watermarks(&raw, wm_every, 20);
        check_parallel(&elements, &time_windows(length, slide), lateness, StorePolicy::Lazy, batch)?;
    }

    /// Eager (FlatFAT-indexed) stores take the deferred-repair path on
    /// every merged partial; results must not change.
    #[test]
    fn parallel_matches_sequential_eager_store(
        raw in prop::collection::vec((0i64..1_000, -50i64..50), 1..120),
        length in 2i64..40,
        slide in 1i64..20,
        batch in 1usize..50,
        wm_every in 1usize..25,
    ) {
        let elements = with_stream_watermarks(&raw, wm_every, 20);
        check_parallel(&elements, &time_windows(length, slide), 100, StorePolicy::Eager, batch)?;
    }

    /// Session windows are context-aware → ineligible → the sequential
    /// fallback must run and match the reference exactly (full sequence).
    #[test]
    fn ineligible_sessions_fall_back_and_match(
        raw in prop::collection::vec((0i64..1_000, -50i64..50), 1..100),
        gap in 1i64..40,
        batch in 1usize..50,
        wm_every in 1usize..25,
    ) {
        let mut tuples = raw;
        tuples.sort_by_key(|&(ts, _)| ts);
        let elements = with_stream_watermarks(&tuples, wm_every, 20);
        let windows: Vec<Box<dyn WindowFunction>> = vec![Box::new(SessionWindow::new(gap))];
        let want = sequential_rows(&elements, &windows, 20, StorePolicy::Lazy);
        for workers in [1usize, 4] {
            let (used, got) =
                parallel_rows(&elements, &windows, 20, StorePolicy::Lazy, workers, batch);
            prop_assert_eq!(used, 0, "sessions must take the fallback");
            prop_assert_eq!(&got, &want, "fallback diverged (workers={}, batch={})", workers, batch);
        }
    }

    /// Multi-query mixes where one query is ineligible must fall back as
    /// a whole — and still match.
    #[test]
    fn mixed_eligibility_falls_back(
        raw in prop::collection::vec((0i64..500, -20i64..20), 1..60),
        length in 2i64..30,
        gap in 1i64..20,
    ) {
        let mut tuples = raw;
        tuples.sort_by_key(|&(ts, _)| ts);
        let elements = with_stream_watermarks(&tuples, 10, 10);
        let windows: Vec<Box<dyn WindowFunction>> = vec![
            Box::new(TumblingWindow::new(length)),
            Box::new(SessionWindow::new(gap)),
        ];
        let want = sequential_rows(&elements, &windows, 10, StorePolicy::Lazy);
        let (used, got) = parallel_rows(&elements, &windows, 10, StorePolicy::Lazy, 4, 8);
        prop_assert_eq!(used, 0);
        prop_assert_eq!(&got, &want);
    }

    /// Genuinely in-order configs (`OperatorConfig::in_order()`) are now
    /// parallel-eligible: the driver synthesizes watermark rounds at
    /// batch boundaries, so finals must match the sequential in-order
    /// operator and no run may ever emit an update.
    #[test]
    fn in_order_config_matches_sequential(
        raw in prop::collection::vec((0i64..2_000, -50i64..50), 1..200),
        length in 1i64..50,
        slide in 1i64..50,
        batch in 1usize..70,
        wm_every in 1usize..40,
        with_explicit_wms_i in 0usize..2,
    ) {
        let with_explicit_wms = with_explicit_wms_i == 1;
        let mut tuples = raw;
        tuples.sort_by_key(|&(ts, _)| ts);
        // Explicit watermarks on a sorted stream with lag >= 1 are
        // order-consistent (every later record is above them).
        let elements = if with_explicit_wms {
            with_stream_watermarks(&tuples, wm_every, 50)
        } else {
            tuples.iter().map(|&(ts, value)| StreamElement::Record { ts, value }).collect()
        };
        let windows = time_windows(length, slide);
        let want = sequential_rows_cfg(&elements, &windows, OperatorConfig::in_order());
        prop_assert!(want.iter().all(|r| !r.4), "in-order reference must never emit updates");
        for workers in [1usize, 2, 4, 8] {
            let report = run_parallel(
                elements.iter().cloned(),
                PipelineConfig::with_parallelism(workers).with_batch_size(batch),
                Sum,
                windows.iter().map(|w| w.clone_box()).collect(),
                OperatorConfig::in_order(),
            );
            prop_assert_eq!(
                report.parallel_workers, workers,
                "in-order static-edge workload must take the parallel path"
            );
            let got: Vec<Row> = report.results.into_iter().map(|(_, r)| row(r)).collect();
            prop_assert!(got.iter().all(|r| !r.4), "parallel in-order run emitted an update");
            prop_assert_eq!(
                sorted(got),
                sorted(want.clone()),
                "in-order emissions diverged (workers={}, batch={})",
                workers,
                batch
            );
        }
    }

    /// The pairwise combining merge tree must be a drop-in for a linear
    /// left fold of worker partial lists: same spans, same combined
    /// partials, same tuple counts and extreme timestamps.
    #[test]
    fn merge_tree_matches_linear_merge(
        per_worker in prop::collection::vec(
            prop::collection::vec((0i64..20, -50i64..50, 1u64..5), 0..30),
            0..9,
        ),
        span in 1i64..40,
    ) {
        use general_stream_slicing::core::{merge_partials_tree, SlicePartial};
        let mk = |lists: &Vec<Vec<(i64, i64, u64)>>| -> Vec<Vec<SlicePartial<Sum>>> {
            lists
                .iter()
                .map(|l| {
                    l.iter()
                        .map(|&(slot, v, n)| SlicePartial {
                            start: slot * span,
                            end: (slot + 1) * span,
                            partial: v,
                            t_first: slot * span,
                            t_last: slot * span + (v.rem_euclid(span)),
                            n,
                        })
                        .collect()
                })
                .collect()
        };
        // Reference: combine everything by span in one flat pass.
        let mut by_span: BTreeMap<(Time, Time), (i64, Time, Time, u64)> = BTreeMap::new();
        for p in mk(&per_worker).into_iter().flatten() {
            let e = by_span
                .entry((p.start, p.end))
                .or_insert((0, Time::MAX, Time::MIN, 0));
            e.0 += p.partial;
            e.1 = e.1.min(p.t_first);
            e.2 = e.2.max(p.t_last);
            e.3 += p.n;
        }
        let got = merge_partials_tree(&Sum, mk(&per_worker));
        prop_assert_eq!(got.len(), by_span.len(), "merged span count diverged");
        for p in got {
            let want = by_span.get(&(p.start, p.end)).expect("unexpected span in tree merge");
            prop_assert_eq!(
                (p.partial, p.t_first, p.t_last, p.n),
                *want,
                "span [{}, {}) diverged",
                p.start,
                p.end
            );
        }
    }
}
