//! Cross-technique equivalence: every aggregation technique of the paper
//! must produce identical final window results on the same workload — the
//! generality requirement ("without changing their input or output
//! semantics").

use general_stream_slicing::prelude::*;
use gss_core::operator::WindowOperator as SlicingOp;
use std::collections::BTreeMap;

type Finals = BTreeMap<(QueryId, Time, Time), i64>;

fn finals(results: &[WindowResult<i64>]) -> Finals {
    results.iter().map(|r| ((r.query, r.range.start, r.range.end), r.value)).collect()
}

fn drive<T: WindowAggregator<Sum>>(
    agg: &mut T,
    arrivals: &[(Time, i64)],
    watermarks: bool,
) -> Finals {
    let mut out = Vec::new();
    let mut max_ts = Time::MIN;
    let mut count = 0u64;
    for &(ts, v) in arrivals {
        agg.process(ts, v, &mut out);
        max_ts = max_ts.max(ts);
        count += 1;
        if watermarks && count.is_multiple_of(50) {
            agg.on_watermark(max_ts - 2_000, &mut out);
        }
    }
    if watermarks {
        agg.on_watermark(i64::MAX - 1, &mut out);
    }
    finals(&out)
}

fn in_order_workload() -> Vec<(Time, i64)> {
    (0..3_000)
        .map(|i| (i * 7 % 9 + i * 3, (i * 13) % 101 - 50))
        .collect::<Vec<_>>()
        .windows(1)
        .map(|w| w[0])
        .collect()
}

fn sorted_workload() -> Vec<(Time, i64)> {
    let mut w = in_order_workload();
    w.sort();
    w
}

fn ooo_workload() -> Vec<(Time, i64)> {
    let w = sorted_workload();
    gss_data::make_out_of_order(
        &w,
        gss_data::OooConfig { fraction_percent: 20, max_delay: 1_500, ..Default::default() },
    )
}

#[test]
fn all_techniques_agree_in_order_tumbling_and_sliding() {
    let tuples = sorted_workload();
    let queries: Vec<(i64, i64)> = vec![(500, 500), (1000, 250), (2000, 700)];

    let mut reference: Option<Finals> = None;
    let mut check = |name: &str, f: Finals| {
        match &reference {
            None => reference = Some(f),
            Some(r) => assert_eq!(r, &f, "{name} differs from reference"),
        };
    };

    for policy in [StorePolicy::Lazy, StorePolicy::Eager] {
        let mut op = SlicingOp::new(Sum, OperatorConfig::in_order().with_policy(policy));
        for &(l, s) in &queries {
            op.add_query(Box::new(SlidingWindow::new(l, s))).unwrap();
        }
        check("general slicing", drive(&mut op, &tuples, false));
    }
    let mut tb = TupleBuffer::new(Sum, StreamOrder::InOrder, 0);
    for &(l, s) in &queries {
        tb.add_query(Box::new(SlidingWindow::new(l, s)));
    }
    check("tuple buffer", drive(&mut tb, &tuples, false));

    let mut at = AggregateTree::new(Sum, StreamOrder::InOrder, 0);
    for &(l, s) in &queries {
        at.add_query(Box::new(SlidingWindow::new(l, s)));
    }
    check("aggregate tree", drive(&mut at, &tuples, false));

    for mode in [BucketMode::Aggregate, BucketMode::Tuple] {
        let mut bk = Buckets::new(Sum, mode, StreamOrder::InOrder, 0);
        for &(l, s) in &queries {
            bk.add_query(Box::new(SlidingWindow::new(l, s)));
        }
        check("buckets", drive(&mut bk, &tuples, false));
    }

    let mut pairs = Pairs::new(Sum);
    for &(l, s) in &queries {
        pairs.add_query(l, s);
    }
    check("pairs", drive(&mut pairs, &tuples, false));

    let mut cutty = Cutty::new(Sum);
    for &(l, s) in &queries {
        cutty.add_query(Box::new(SlidingWindow::new(l, s)));
    }
    check("cutty", drive(&mut cutty, &tuples, false));
}

#[test]
fn ooo_capable_techniques_agree_with_sessions() {
    let arrivals = ooo_workload();
    let lateness = 100_000;

    let build_queries = || -> Vec<Box<dyn WindowFunction>> {
        vec![
            Box::new(SlidingWindow::new(1000, 250)),
            Box::new(SessionWindow::new(40).with_retention(1_000_000)),
        ]
    };

    let mut op = SlicingOp::new(Sum, OperatorConfig::out_of_order(lateness));
    for q in build_queries() {
        op.add_query(q).unwrap();
    }
    let slicing = drive(&mut op, &arrivals, true);

    let mut op =
        SlicingOp::new(Sum, OperatorConfig::out_of_order(lateness).with_policy(StorePolicy::Eager));
    for q in build_queries() {
        op.add_query(q).unwrap();
    }
    let eager = drive(&mut op, &arrivals, true);

    let mut tb = TupleBuffer::new(Sum, StreamOrder::OutOfOrder, lateness);
    for q in build_queries() {
        tb.add_query(q);
    }
    let buffer = drive(&mut tb, &arrivals, true);

    let mut at = AggregateTree::new(Sum, StreamOrder::OutOfOrder, lateness);
    for q in build_queries() {
        at.add_query(q);
    }
    let tree = drive(&mut at, &arrivals, true);

    let mut bk = Buckets::new(Sum, BucketMode::Aggregate, StreamOrder::OutOfOrder, lateness);
    for q in build_queries() {
        bk.add_query(q);
    }
    let buckets = drive(&mut bk, &arrivals, true);

    assert_eq!(slicing, eager, "lazy vs eager slicing");
    assert_eq!(slicing, buffer, "slicing vs tuple buffer");
    assert_eq!(slicing, tree, "slicing vs aggregate tree");
    assert_eq!(slicing, buckets, "slicing vs buckets");
    assert!(!slicing.is_empty());
}

#[test]
fn count_windows_agree_between_slicing_and_tuple_buffer() {
    let tuples = sorted_workload();
    let mut op = SlicingOp::new(Sum, OperatorConfig::in_order());
    op.add_query(Box::new(CountTumblingWindow::new(64))).unwrap();
    op.add_query(Box::new(CountSlidingWindow::new(128, 32))).unwrap();
    let a = drive(&mut op, &tuples, false);

    let mut tb = TupleBuffer::new(Sum, StreamOrder::InOrder, 0);
    tb.add_query(Box::new(CountTumblingWindow::new(64)));
    tb.add_query(Box::new(CountSlidingWindow::new(128, 32)));
    let b = drive(&mut tb, &tuples, false);

    assert_eq!(a, b);
    assert!(!a.is_empty());
}

#[test]
fn holistic_median_agrees_across_techniques() {
    let tuples: Vec<(Time, i64)> = (0..2_000).map(|i| (i, (i * 37) % 97)).collect();
    let drive_median = |out: &mut Vec<WindowResult<i64>>,
                        agg: &mut dyn WindowAggregator<Median>| {
        for &(ts, v) in &tuples {
            agg.process(ts, v, out);
        }
    };

    let mut op = SlicingOp::new(Median, OperatorConfig::in_order());
    op.add_query(Box::new(SlidingWindow::new(500, 100))).unwrap();
    let mut o1 = Vec::new();
    drive_median(&mut o1, &mut op);

    let mut tb = TupleBuffer::new(Median, StreamOrder::InOrder, 0);
    tb.add_query(Box::new(SlidingWindow::new(500, 100)));
    let mut o2 = Vec::new();
    drive_median(&mut o2, &mut tb);

    let mut bk = Buckets::new(Median, BucketMode::Tuple, StreamOrder::InOrder, 0);
    bk.add_query(Box::new(SlidingWindow::new(500, 100)));
    let mut o3 = Vec::new();
    drive_median(&mut o3, &mut bk);

    assert_eq!(finals(&o1), finals(&o2), "slicing vs tuple buffer");
    assert_eq!(finals(&o1), finals(&o3), "slicing vs buckets");
    assert!(!o1.is_empty());
}

#[test]
fn memory_ordering_matches_table1() {
    // Qualitative Table 1 check on a CF in-order workload where slicing
    // can drop tuples: slicing memory << tuple-based techniques, and
    // tuple buckets replicate tuples (largest).
    let tuples: Vec<(Time, i64)> = (0..20_000).map(|i| (i, 1)).collect();
    let queries = |add: &mut dyn FnMut(Box<dyn WindowFunction>)| {
        add(Box::new(SlidingWindow::new(4_000, 200)));
    };

    let mut op = SlicingOp::new(Sum, OperatorConfig::in_order());
    queries(&mut |w| {
        op.add_query(w).unwrap();
    });
    let mut tb = TupleBuffer::new(Sum, StreamOrder::InOrder, 0);
    queries(&mut |w| {
        tb.add_query(w);
    });
    let mut at = AggregateTree::new(Sum, StreamOrder::InOrder, 0);
    queries(&mut |w| {
        at.add_query(w);
    });
    let mut bt = Buckets::new(Sum, BucketMode::Tuple, StreamOrder::InOrder, 0);
    queries(&mut |w| {
        bt.add_query(w);
    });

    let mut out = Vec::new();
    for &(ts, v) in &tuples {
        op.process(ts, v, &mut out);
        tb.process(ts, v, &mut out);
        at.process(ts, v, &mut out);
        bt.process(ts, v, &mut out);
    }

    let slicing = op.memory_bytes();
    let buffer = tb.memory_bytes();
    let tree = at.memory_bytes();
    let tuple_buckets = bt.memory_bytes();
    assert!(
        slicing * 10 < buffer,
        "slicing ({slicing}) should be far below tuple buffer ({buffer})"
    );
    assert!(buffer < tree, "tree ({tree}) adds inner nodes over buffer ({buffer})");
    assert!(
        buffer * 2 < tuple_buckets,
        "tuple buckets ({tuple_buckets}) replicate tuples vs buffer ({buffer})"
    );
}
