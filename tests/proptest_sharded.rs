//! Property tests for key-sharded multi-core execution:
//! `run_sharded_keyed` must agree with one single-threaded keyed
//! operator across window types, stream order, shard counts, batching
//! modes, and key skew.
//!
//! What "agree" means (see `crates/stream/src/sharded.rs`): the sharded
//! driver releases emissions in watermark epochs, each epoch
//! stable-sorted by key. Keys never interact inside keyed operators and
//! each key lives wholly in one shard, so applying the same per-epoch
//! canonicalization (stable key sort) to the single-threaded reference
//! must reproduce the sharded output *exactly* — order, values, and
//! update flags included, on every shard count and batching mode.

use general_stream_slicing::prelude::*;
use proptest::prelude::*;

type Row = (u64, Time, Time, i64, bool);

fn row(r: &WindowResult<(u64, i64)>) -> Row {
    (r.value.0, r.range.start, r.range.end, r.value.1, r.is_update)
}

fn keyed_windows(kind: usize, a: i64, b: i64) -> Vec<Box<dyn WindowFunction>> {
    let a = a.max(1);
    let b = b.max(1);
    match kind {
        0 => vec![Box::new(TumblingWindow::new(a))],
        1 => vec![Box::new(SlidingWindow::new(a.max(b), b))],
        _ => vec![Box::new(TumblingWindow::new(a)), Box::new(SlidingWindow::new(a.max(b), b))],
    }
}

/// Keyed stream with monotone watermarks every `wm_every` records at
/// `max_ts - lag`, plus a final flush. `hot` concentrates half of all
/// records on key 0 (zipf-ish skew); otherwise keys spread uniformly.
fn make_elements(
    raw: &[(i64, i64)],
    keys: u64,
    hot: bool,
    wm_every: usize,
    lag: Time,
) -> Vec<StreamElement<(u64, i64)>> {
    let wm_every = wm_every.max(1);
    let mut elements = Vec::with_capacity(raw.len() + raw.len() / wm_every + 2);
    let mut max_ts = Time::MIN;
    for (i, &(ts, v)) in raw.iter().enumerate() {
        let key = if hot && i % 2 == 0 { 0 } else { (i as u64).wrapping_mul(31) % keys };
        elements.push(StreamElement::Record { ts, value: (key, v) });
        max_ts = max_ts.max(ts);
        if i % wm_every == wm_every - 1 {
            elements.push(StreamElement::Watermark(max_ts - lag));
        }
    }
    elements.push(StreamElement::Watermark(i64::MAX - 1));
    elements
}

/// Single-threaded reference: one keyed operator driven element by
/// element, emissions canonicalized per watermark epoch by a stable key
/// sort — exactly the order the sharded merge stage releases.
fn reference(
    elements: &[StreamElement<(u64, i64)>],
    mut op: Box<dyn WindowAggregator<PerKey<Sum>>>,
) -> Vec<Row> {
    let mut out: Vec<WindowResult<(u64, i64)>> = Vec::new();
    let mut epoch: Vec<Row> = Vec::new();
    let mut canon: Vec<Row> = Vec::new();
    for e in elements {
        match e {
            StreamElement::Record { ts, value } => op.process(*ts, *value, &mut out),
            StreamElement::Watermark(wm) => op.on_watermark(*wm, &mut out),
            StreamElement::Punctuation(ts) => op.on_punctuation(*ts, &mut out),
        }
        epoch.extend(out.drain(..).map(|r| row(&r)));
        if matches!(e, StreamElement::Watermark(_)) {
            epoch.sort_by_key(|r| r.0);
            canon.append(&mut epoch);
        }
    }
    epoch.sort_by_key(|r| r.0);
    canon.append(&mut epoch);
    canon
}

fn sharded(
    elements: &[StreamElement<(u64, i64)>],
    cfg: PipelineConfig,
    make_op: impl Fn(usize) -> Box<dyn WindowAggregator<PerKey<Sum>>>,
) -> (usize, Vec<Row>) {
    let report = run_sharded_keyed(elements.iter().cloned(), cfg, make_op);
    (report.shards, report.results.iter().map(|(_, r)| row(r)).collect())
}

/// Runs the full grid — shards {1, 2, 4, 8} × batching {per-tuple,
/// fixed, adaptive} — against one reference sequence.
fn check_grid(
    elements: &[StreamElement<(u64, i64)>],
    batch: usize,
    make_op: &dyn Fn() -> Box<dyn WindowAggregator<PerKey<Sum>>>,
) -> Result<(), TestCaseError> {
    let want = reference(elements, make_op());
    for shards in [1usize, 2, 4, 8] {
        let cfgs = [
            ("per_tuple", PipelineConfig::with_parallelism(shards).per_tuple()),
            ("fixed", PipelineConfig::with_parallelism(shards).with_batch_size(batch)),
            (
                "adaptive",
                PipelineConfig::with_parallelism(shards)
                    .adaptive(batch, std::time::Duration::from_millis(1)),
            ),
        ];
        for (mode, cfg) in cfgs {
            let (used, got) = sharded(elements, cfg, |_| make_op());
            prop_assert_eq!(used, shards, "report must record the shard count");
            prop_assert_eq!(
                &got,
                &want,
                "sharded emissions diverged (shards={}, mode={}, batch={})",
                shards,
                mode,
                batch
            );
        }
    }
    Ok(())
}

fn shared_factory(
    kind: usize,
    length: i64,
    slide: i64,
    lateness: Time,
) -> impl Fn() -> Box<dyn WindowAggregator<PerKey<Sum>>> {
    move || {
        Box::new(KeyedWindowOperator::new(
            Sum,
            keyed_windows(kind, length, slide),
            KeyedConfig::default().with_allowed_lateness(lateness),
        ))
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// In-order keyed streams over the shared keyed operator: tumbling,
    /// sliding, and multi-query windows; uniform and hot-key skew.
    #[test]
    fn sharded_matches_single_threaded_in_order(
        raw in prop::collection::vec((0i64..2_000, -50i64..50), 1..200),
        kind in 0usize..3,
        length in 1i64..60,
        slide in 1i64..40,
        keys in 1u64..40,
        hot_i in 0usize..2,
        batch in 1usize..80,
        wm_every in 1usize..40,
    ) {
        let mut tuples = raw;
        tuples.sort_by_key(|&(ts, _)| ts);
        let elements = make_elements(&tuples, keys, hot_i == 1, wm_every, 50);
        let factory = shared_factory(kind, length, slide, 50);
        check_grid(&elements, batch, &factory)?;
    }

    /// Out-of-order keyed streams: random arrival order means stragglers
    /// (update emissions) and allowed-lateness drops inside every shard.
    #[test]
    fn sharded_matches_single_threaded_out_of_order(
        raw in prop::collection::vec((0i64..1_500, -50i64..50), 1..150),
        kind in 0usize..3,
        length in 2i64..50,
        slide in 1i64..30,
        keys in 1u64..30,
        hot_i in 0usize..2,
        lateness_i in 0usize..3,
        batch in 1usize..60,
        wm_every in 1usize..30,
    ) {
        let lateness = [0i64, 50, 400][lateness_i];
        let elements = make_elements(&raw, keys, hot_i == 1, wm_every, 20);
        let factory = shared_factory(kind, length, slide, lateness);
        check_grid(&elements, batch, &factory)?;
    }

    /// Session windows force the naive per-key fallback operator inside
    /// every shard; hash routing and the epoch barrier must not care
    /// which keyed implementation runs behind them.
    #[test]
    fn sharded_sessions_via_naive_fallback(
        raw in prop::collection::vec((0i64..1_000, -30i64..30), 1..100),
        gap in 1i64..40,
        keys in 1u64..20,
        hot_i in 0usize..2,
        batch in 1usize..50,
        wm_every in 1usize..25,
    ) {
        let mut tuples = raw;
        tuples.sort_by_key(|&(ts, _)| ts);
        let elements = make_elements(&tuples, keys, hot_i == 1, wm_every, 20);
        let factory = move || -> Box<dyn WindowAggregator<PerKey<Sum>>> {
            let windows: Vec<Box<dyn WindowFunction>> =
                vec![Box::new(SessionWindow::new(gap))];
            Box::new(NaiveKeyedOperator::new(
                Sum,
                windows,
                KeyedConfig::default().with_allowed_lateness(20),
            ))
        };
        check_grid(&elements, batch, &factory)?;
    }

    /// Every record of a key lands in the shard `shard_of` names, for
    /// any shard count — the routing invariant the equivalence rests on.
    #[test]
    fn shard_of_is_stable_and_total(key in 0u64..u64::MAX, shards in 1usize..64) {
        let s = shard_of(key, shards);
        prop_assert!(s < shards);
        prop_assert_eq!(s, shard_of(key, shards), "routing must be deterministic");
    }
}
