//! Property tests for keyed window aggregation: the shared-timeline
//! [`KeyedWindowOperator`] (and the [`NaiveKeyedOperator`] baseline)
//! must emit exactly the same result multiset as a reference map of
//! independent per-key [`WindowOperator`]s, across window types
//! (tumbling/sliding on the shared path, session on the fallback),
//! stream order, batch size, watermark placement (including stale,
//! repeated, and flush watermarks), and idle-key TTL eviction.
//!
//! The reference replays the current watermark into each freshly created
//! per-key operator — watermarks are broadcast, so a key first seen late
//! in the stream is still subject to the global lateness rule.

use std::collections::BTreeMap;

use general_stream_slicing::prelude::*;
use proptest::prelude::*;

/// `(watermark segment, key, query, start, end, value, is_update)` — the
/// segment index pins emissions to the watermark interval they occurred
/// in, so sorting compares segment-by-segment multisets (emission order
/// across keys within a segment is not specified).
type Emitted = Vec<(usize, u64, QueryId, Time, Time, i64, bool)>;

type KeyedElements = Vec<StreamElement<(u64, i64)>>;

/// Reference: one full `WindowOperator` per key, driven tuple-at-a-time.
struct RefKeyed {
    ops: BTreeMap<u64, WindowOperator<Sum>>,
    windows: Vec<Box<dyn WindowFunction>>,
    lateness: Time,
    wm: Time,
}

const TIME_MIN: Time = i64::MIN;

impl RefKeyed {
    fn new(windows: Vec<Box<dyn WindowFunction>>, lateness: Time) -> Self {
        RefKeyed { ops: BTreeMap::new(), windows, lateness, wm: TIME_MIN }
    }

    fn run(mut self, elements: &KeyedElements) -> Emitted {
        let mut emitted = Emitted::new();
        let mut scratch = Vec::new();
        let mut segment = 0usize;
        for e in elements {
            match e {
                StreamElement::Record { ts, value: (key, v) } => {
                    if !self.ops.contains_key(key) {
                        let mut op =
                            WindowOperator::new(Sum, OperatorConfig::out_of_order(self.lateness));
                        for w in &self.windows {
                            op.add_query(w.clone_box()).unwrap();
                        }
                        if self.wm != TIME_MIN {
                            op.process_watermark(self.wm, &mut scratch);
                            assert!(scratch.is_empty());
                        }
                        self.ops.insert(*key, op);
                    }
                    let op = self.ops.get_mut(key).unwrap();
                    op.process(*ts, *v, &mut scratch);
                    emitted.extend(scratch.drain(..).map(|r| {
                        (segment, *key, r.query, r.range.start, r.range.end, r.value, r.is_update)
                    }));
                }
                StreamElement::Watermark(wm) => {
                    if *wm > self.wm {
                        self.wm = *wm;
                        for (key, op) in self.ops.iter_mut() {
                            op.process_watermark(*wm, &mut scratch);
                            emitted.extend(scratch.drain(..).map(|r| {
                                (
                                    segment,
                                    *key,
                                    r.query,
                                    r.range.start,
                                    r.range.end,
                                    r.value,
                                    r.is_update,
                                )
                            }));
                        }
                    }
                    segment += 1;
                }
                StreamElement::Punctuation(_) => {}
            }
        }
        emitted
    }
}

/// Drives a keyed aggregator in chunks of `batch_size`, flushing the
/// pending chunk before every watermark so watermark segments line up
/// with the per-tuple reference.
fn drive_keyed(
    agg: &mut dyn WindowAggregator<PerKey<Sum>>,
    elements: &KeyedElements,
    batch_size: usize,
) -> Emitted {
    let batch_size = batch_size.max(1);
    let mut emitted = Emitted::new();
    let mut out = Vec::new();
    let mut buf: Vec<(Time, (u64, i64))> = Vec::new();
    let mut segment = 0usize;
    for e in elements {
        match e {
            StreamElement::Record { ts, value } => {
                buf.push((*ts, *value));
                if buf.len() >= batch_size {
                    agg.process_batch(&buf, &mut out);
                    buf.clear();
                }
            }
            StreamElement::Watermark(wm) => {
                if !buf.is_empty() {
                    agg.process_batch(&buf, &mut out);
                    buf.clear();
                }
                agg.on_watermark(*wm, &mut out);
            }
            StreamElement::Punctuation(_) => {}
        }
        emitted.extend(out.drain(..).map(|r| {
            (segment, r.value.0, r.query, r.range.start, r.range.end, r.value.1, r.is_update)
        }));
        if matches!(e, StreamElement::Watermark(_)) {
            segment += 1;
        }
    }
    if !buf.is_empty() {
        agg.process_batch(&buf, &mut out);
        emitted.extend(out.drain(..).map(|r| {
            (segment, r.value.0, r.query, r.range.start, r.range.end, r.value.1, r.is_update)
        }));
    }
    emitted
}

fn sorted(mut e: Emitted) -> Emitted {
    e.sort_unstable();
    e
}

/// Interleaves watermarks into a keyed tuple stream: one every
/// `every` records at `max_ts - lag` (watermarks are monotone because
/// `max_ts` is), with an occasional stale duplicate to exercise the
/// non-increasing-watermark ignore path, plus a final flush.
fn with_keyed_watermarks(tuples: &[(Time, u64, i64)], every: usize, lag: Time) -> KeyedElements {
    let every = every.max(1);
    let mut elements = KeyedElements::with_capacity(tuples.len() + tuples.len() / every + 2);
    let mut max_ts = TIME_MIN;
    for (i, &(ts, key, v)) in tuples.iter().enumerate() {
        elements.push(StreamElement::Record { ts, value: (key, v) });
        max_ts = max_ts.max(ts);
        if i % every == every - 1 {
            elements.push(StreamElement::Watermark(max_ts - lag));
            if i % (3 * every) == every - 1 {
                // Stale: strictly behind the one just emitted.
                elements.push(StreamElement::Watermark(max_ts - lag - 1));
            }
        }
    }
    elements.push(StreamElement::Watermark(i64::MAX - 1));
    elements
}

fn time_windows(length: i64, slide: i64) -> Vec<Box<dyn WindowFunction>> {
    vec![
        Box::new(TumblingWindow::new(length)),
        Box::new(SlidingWindow::new(length.max(slide), slide)),
    ]
}

fn check_all(
    windows: impl Fn() -> Vec<Box<dyn WindowFunction>>,
    cfg: KeyedConfig,
    lateness: Time,
    elements: &KeyedElements,
    batch_size: usize,
    expect_shared: bool,
) -> Result<(), TestCaseError> {
    let reference = RefKeyed::new(windows(), lateness).run(elements);
    let want = sorted(reference);

    let mut shared = KeyedWindowOperator::new(Sum, windows(), cfg);
    prop_assert_eq!(shared.is_shared(), expect_shared);
    let got = sorted(drive_keyed(&mut shared, elements, batch_size));
    prop_assert_eq!(&got, &want, "KeyedWindowOperator diverged (batch {})", batch_size);

    let mut naive = NaiveKeyedOperator::new(Sum, windows(), cfg);
    let got = sorted(drive_keyed(&mut naive, elements, batch_size));
    prop_assert_eq!(&got, &want, "NaiveKeyedOperator diverged (batch {})", batch_size);

    // Per-tuple processing through the same operators must agree too.
    let mut shared = KeyedWindowOperator::new(Sum, windows(), cfg);
    let got = sorted(drive_keyed(&mut shared, elements, 1));
    prop_assert_eq!(&got, &want, "per-tuple KeyedWindowOperator diverged");
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// In-order keyed streams on the shared path: tumbling + sliding
    /// queries over interleaved keys, every batch size, watermarks with
    /// stale duplicates.
    #[test]
    fn keyed_matches_reference_in_order(
        raw in prop::collection::vec((0i64..2_000, 0u64..10, -50i64..50), 1..200),
        length in 1i64..50,
        slide in 1i64..50,
        lateness_i in 0usize..3,
        batch_size in 1usize..70,
        wm_every in 1usize..40,
    ) {
        let lateness = [0i64, 50, 500][lateness_i];
        let mut tuples = raw;
        tuples.sort_by_key(|&(ts, _, _)| ts);
        let elements = with_keyed_watermarks(&tuples, wm_every, 50);
        check_all(
            || time_windows(length, slide),
            KeyedConfig::default().with_allowed_lateness(lateness),
            lateness,
            &elements,
            batch_size,
            true,
        )?;
    }

    /// Out-of-order keyed streams: random arrival order means heavy
    /// key-late traffic — allowed-lateness drops and window updates must
    /// match the reference exactly, including keys first seen behind the
    /// watermark (timeline prepends, watermark replay in the reference).
    #[test]
    fn keyed_matches_reference_out_of_order(
        raw in prop::collection::vec((0i64..2_000, 0u64..8, -50i64..50), 1..150),
        length in 2i64..50,
        slide in 1i64..30,
        lateness_i in 0usize..3,
        batch_size in 1usize..70,
        wm_every in 1usize..30,
    ) {
        let lateness = [0i64, 50, 500][lateness_i];
        // Raw vec order is random in ts: maximal disorder.
        let elements = with_keyed_watermarks(&raw, wm_every, 20);
        check_all(
            || time_windows(length, slide),
            KeyedConfig::default().with_allowed_lateness(lateness),
            lateness,
            &elements,
            batch_size,
            true,
        )?;
    }

    /// Session windows are context-aware, so the operator must fall back
    /// to the naive per-key path — and still match the reference map.
    #[test]
    fn keyed_session_fallback_matches_reference(
        raw in prop::collection::vec((0i64..2_000, 0u64..6, -50i64..50), 1..120),
        gap in 1i64..60,
        batch_size in 1usize..50,
        wm_every in 1usize..30,
    ) {
        let mut tuples = raw;
        tuples.sort_by_key(|&(ts, _, _)| ts);
        let elements = with_keyed_watermarks(&tuples, wm_every, 50);
        let windows = || -> Vec<Box<dyn WindowFunction>> { vec![Box::new(SessionWindow::new(gap))] };
        check_all(
            windows,
            KeyedConfig::default().with_allowed_lateness(0),
            0,
            &elements,
            batch_size,
            false,
        )?;
    }

    /// Idle-key TTL eviction on globally in-order streams is invisible in
    /// the output: an evicted key's windows were fully emitted before
    /// eviction, and a reappearing key starts fresh exactly like the
    /// reference (which never evicts) would continue in order. Exercises
    /// the trigger-heap and TTL-heap interplay: keys going idle, being
    /// evicted, and re-registering.
    #[test]
    fn keyed_ttl_eviction_is_invisible_in_order(
        raw in prop::collection::vec((0i64..4_000, 0u64..6, -50i64..50), 1..200),
        length in 1i64..40,
        slide in 1i64..40,
        ttl in 1i64..400,
        batch_size in 1usize..50,
        wm_every in 1usize..20,
    ) {
        let mut tuples = raw;
        tuples.sort_by_key(|&(ts, _, _)| ts);
        let elements = with_keyed_watermarks(&tuples, wm_every, 30);
        let windows = || time_windows(length, slide);
        let want = sorted(RefKeyed::new(windows(), 0).run(&elements));

        let cfg = KeyedConfig::default().with_idle_ttl(ttl);
        let mut shared = KeyedWindowOperator::new(Sum, windows(), cfg);
        prop_assert!(shared.is_shared());
        let got = sorted(drive_keyed(&mut shared, &elements, batch_size));
        prop_assert_eq!(&got, &want, "shared + ttl {} diverged", ttl);
        // Everything is drained by the flush watermark: with a TTL set,
        // every key must eventually be evicted.
        prop_assert_eq!(shared.live_keys(), 0, "flush watermark must evict all idle keys");

        let mut naive = NaiveKeyedOperator::new(Sum, windows(), cfg);
        let got = sorted(drive_keyed(&mut naive, &elements, batch_size));
        prop_assert_eq!(&got, &want, "naive + ttl {} diverged", ttl);
        prop_assert_eq!(naive.live_keys(), 0);
    }
}
