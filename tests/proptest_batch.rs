//! Property tests for the batched ingestion fast path: for every
//! technique, [`WindowAggregator::process_batch`] must produce the
//! *identical* result stream to per-tuple [`WindowAggregator::process`]
//! — same windows, same values, same order — across random batch sizes,
//! in-order and out-of-order inputs, lazy, eager, and finger-tree
//! stores, and context-free, context-aware, and count-based queries.
//!
//! The second block pins the bulk-fold kernels against the lane-kernel
//! reassociation policy (`gss_aggregates::lanes`): integer `fold_slice`
//! and paired-column `fold_slice_pairs` kernels must be *bit-identical*
//! to the default lift/combine fold — empty runs, ties, and
//! gate-straddling lengths included — while the f64 moments kernel must
//! be deterministic across calls and ulp-bounded against the sequential
//! fold. The keyed/parallel pipelines must agree across per-tuple,
//! fixed, and adaptive batching modes. Under `--features audit` these
//! drives also exercise the struct-of-arrays chunk invariants (column
//! length agreement, run monotonicity) asserted inside the library.

use std::collections::BTreeMap;
use std::time::Duration;

use general_stream_slicing::core::{default_fold_slice, FOLD_KERNEL_MIN_RUN};
use general_stream_slicing::prelude::*;
use proptest::prelude::*;

type Emitted = Vec<(QueryId, Time, Time, i64)>;
/// `(name, per-tuple instance, batched instance)` for one technique.
type TechniquePair = (&'static str, Box<dyn WindowAggregator<Sum>>, Box<dyn WindowAggregator<Sum>>);

fn sorted(tuples: &[(Time, i64)]) -> Vec<(Time, i64)> {
    let mut s: Vec<(usize, (Time, i64))> = tuples.iter().copied().enumerate().collect();
    s.sort_by_key(|(i, (t, _))| (*t, *i));
    s.into_iter().map(|(_, t)| t).collect()
}

fn drive_per_tuple(
    agg: &mut dyn WindowAggregator<Sum>,
    elements: &[StreamElement<i64>],
) -> Emitted {
    let mut out = Vec::new();
    let mut emitted = Emitted::new();
    for e in elements {
        match e {
            StreamElement::Record { ts, value } => agg.process(*ts, *value, &mut out),
            StreamElement::Watermark(wm) => agg.on_watermark(*wm, &mut out),
            _ => {}
        }
        emitted.extend(out.drain(..).map(|r| (r.query, r.range.start, r.range.end, r.value)));
    }
    emitted
}

/// Feeds records in chunks of `batch_size` through `process_batch`,
/// flushing the pending chunk before each watermark (like the pipeline
/// source does) so watermark placement relative to records is preserved.
fn drive_batched(
    agg: &mut dyn WindowAggregator<Sum>,
    elements: &[StreamElement<i64>],
    batch_size: usize,
) -> Emitted {
    let batch_size = batch_size.max(1);
    let mut out = Vec::new();
    let mut emitted = Emitted::new();
    let mut buf: Vec<(Time, i64)> = Vec::new();
    let flush = |buf: &mut Vec<(Time, i64)>,
                 agg: &mut dyn WindowAggregator<Sum>,
                 out: &mut Vec<WindowResult<i64>>| {
        if !buf.is_empty() {
            agg.process_batch(buf, out);
            buf.clear();
        }
    };
    for e in elements {
        match e {
            StreamElement::Record { ts, value } => {
                buf.push((*ts, *value));
                if buf.len() >= batch_size {
                    flush(&mut buf, agg, &mut out);
                }
            }
            StreamElement::Watermark(wm) => {
                flush(&mut buf, agg, &mut out);
                agg.on_watermark(*wm, &mut out);
            }
            _ => {}
        }
        emitted.extend(out.drain(..).map(|r| (r.query, r.range.start, r.range.end, r.value)));
    }
    flush(&mut buf, agg, &mut out);
    emitted.extend(out.drain(..).map(|r| (r.query, r.range.start, r.range.end, r.value)));
    emitted
}

/// One factory per technique, so per-tuple and batched drivers each get a
/// fresh, identically configured aggregator.
fn techniques(
    queries: &[Box<dyn Fn() -> Box<dyn WindowFunction>>],
    order: StreamOrder,
    lateness: Time,
) -> Vec<TechniquePair> {
    let slicing = |policy: StorePolicy| {
        let mut op = WindowOperator::new(
            Sum,
            OperatorConfig {
                order,
                policy,
                allowed_lateness: lateness,
                ..OperatorConfig::default()
            },
        );
        for q in queries {
            op.add_query(q()).unwrap();
        }
        Box::new(op) as Box<dyn WindowAggregator<Sum>>
    };
    let buckets = |mode: BucketMode| {
        let mut b = Buckets::new(Sum, mode, order, lateness);
        for q in queries {
            b.add_query(q());
        }
        Box::new(b) as Box<dyn WindowAggregator<Sum>>
    };
    let tuple_buffer = || {
        let mut t = TupleBuffer::new(Sum, order, lateness);
        for q in queries {
            t.add_query(q());
        }
        Box::new(t) as Box<dyn WindowAggregator<Sum>>
    };
    let tree = || {
        let mut t = AggregateTree::new(Sum, order, lateness);
        for q in queries {
            t.add_query(q());
        }
        Box::new(t) as Box<dyn WindowAggregator<Sum>>
    };
    vec![
        ("lazy", slicing(StorePolicy::Lazy), slicing(StorePolicy::Lazy)),
        ("eager", slicing(StorePolicy::Eager), slicing(StorePolicy::Eager)),
        ("finger", slicing(StorePolicy::FingerTree), slicing(StorePolicy::FingerTree)),
        ("buckets", buckets(BucketMode::Aggregate), buckets(BucketMode::Aggregate)),
        ("tuple-buckets", buckets(BucketMode::Tuple), buckets(BucketMode::Tuple)),
        ("tuple-buffer", tuple_buffer(), tuple_buffer()),
        ("aggregate-tree", tree(), tree()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// In-order, context-free time windows (the fast path's home turf):
    /// the batched result stream is byte-identical to per-tuple.
    #[test]
    fn batch_matches_per_tuple_in_order(
        raw in prop::collection::vec((0i64..2_000, -50i64..50), 1..200),
        length in 1i64..50,
        slide in 1i64..50,
        batch_size in 1usize..70,
    ) {
        let tuples = sorted(&raw);
        let elements: Vec<StreamElement<i64>> =
            tuples.iter().map(|&(ts, value)| StreamElement::Record { ts, value }).collect();
        let queries: Vec<Box<dyn Fn() -> Box<dyn WindowFunction>>> = vec![
            Box::new(move || Box::new(TumblingWindow::new(length))),
            Box::new(move || Box::new(SlidingWindow::new(length.max(slide), slide))),
        ];
        for (name, mut per_tuple, mut batched) in
            techniques(&queries, StreamOrder::InOrder, 0)
        {
            let a = drive_per_tuple(per_tuple.as_mut(), &elements);
            let b = drive_batched(batched.as_mut(), &elements, batch_size);
            prop_assert_eq!(a, b, "{} diverged at batch size {}", name, batch_size);
        }
    }

    /// Context-aware (session) and count-based queries in the mix: the
    /// fast paths must detect ineligibility and fall back without
    /// changing a single emission.
    #[test]
    fn batch_matches_per_tuple_with_session_and_count(
        raw in prop::collection::vec((0i64..2_000, -50i64..50), 1..150),
        gap in 1i64..60,
        count_len in 1u64..20,
        batch_size in 1usize..70,
    ) {
        let tuples = sorted(&raw);
        let elements: Vec<StreamElement<i64>> =
            tuples.iter().map(|&(ts, value)| StreamElement::Record { ts, value }).collect();
        let queries: Vec<Box<dyn Fn() -> Box<dyn WindowFunction>>> = vec![
            Box::new(move || Box::new(SessionWindow::new(gap))),
            Box::new(move || Box::new(CountTumblingWindow::new(count_len))),
        ];
        for (name, mut per_tuple, mut batched) in
            techniques(&queries, StreamOrder::InOrder, 0)
        {
            let a = drive_per_tuple(per_tuple.as_mut(), &elements);
            let b = drive_batched(batched.as_mut(), &elements, batch_size);
            prop_assert_eq!(a, b, "{} diverged at batch size {}", name, batch_size);
        }
    }

    /// Out-of-order arrivals with watermarks: batches contain unsorted
    /// records, so runs break at every inversion; results must still be
    /// identical, including late-tuple window updates.
    #[test]
    fn batch_matches_per_tuple_out_of_order(
        raw in prop::collection::vec((0i64..2_000, -50i64..50), 1..150),
        length in 2i64..50,
        fraction in 0u8..60,
        batch_size in 1usize..70,
    ) {
        let tuples = sorted(&raw);
        let arrivals = make_out_of_order(
            &tuples,
            OooConfig { fraction_percent: fraction, max_delay: 100, ..Default::default() },
        );
        let elements = with_watermarks(&arrivals, 50, 100);
        let queries: Vec<Box<dyn Fn() -> Box<dyn WindowFunction>>> = vec![
            Box::new(move || Box::new(TumblingWindow::new(length))),
        ];
        for (name, mut per_tuple, mut batched) in
            techniques(&queries, StreamOrder::OutOfOrder, 10_000)
        {
            let a = drive_per_tuple(per_tuple.as_mut(), &elements);
            let b = drive_batched(batched.as_mut(), &elements, batch_size);
            prop_assert_eq!(a, b, "{} diverged at batch size {}", name, batch_size);
        }
    }

    /// Pairs, Cutty, and Panes fold in-order runs into their open partial
    /// with one combine; pin the fast path against per-tuple processing.
    #[test]
    fn batch_fast_path_matches_for_pairs_cutty_panes(
        raw in prop::collection::vec((0i64..2_000, -50i64..50), 1..150),
        length in 1i64..50,
        slide in 1i64..50,
        batch_size in 1usize..70,
    ) {
        let tuples = sorted(&raw);
        let elements: Vec<StreamElement<i64>> =
            tuples.iter().map(|&(ts, value)| StreamElement::Record { ts, value }).collect();
        let (length, slide) = (length.max(slide), slide);

        let mut p1 = Pairs::new(Sum);
        p1.add_query(length, slide);
        let mut p2 = Pairs::new(Sum);
        p2.add_query(length, slide);
        let a = drive_per_tuple(&mut p1, &elements);
        let b = drive_batched(&mut p2, &elements, batch_size);
        prop_assert_eq!(a, b, "pairs diverged at batch size {}", batch_size);

        let mut c1 = Cutty::new(Sum);
        c1.add_query(Box::new(SlidingWindow::new(length, slide)));
        let mut c2 = Cutty::new(Sum);
        c2.add_query(Box::new(SlidingWindow::new(length, slide)));
        let a = drive_per_tuple(&mut c1, &elements);
        let b = drive_batched(&mut c2, &elements, batch_size);
        prop_assert_eq!(a, b, "cutty diverged at batch size {}", batch_size);

        let mut n1 = Panes::new(Sum);
        n1.add_query(length, slide);
        let mut n2 = Panes::new(Sum);
        n2.add_query(length, slide);
        let a = drive_per_tuple(&mut n1, &elements);
        let b = drive_batched(&mut n2, &elements, batch_size);
        prop_assert_eq!(a, b, "panes diverged at batch size {}", batch_size);
    }

    /// The PR 2 out-of-order grid (paper Figure 11 setup): allowed
    /// lateness {0, 50, 500} × disorder {0%, 5%, 20%, 50%} × batch sizes
    /// {1, 64, 512}, lazy, eager, and finger-tree stores. The batched
    /// late-run grouping path (sort + one combined partial per touched
    /// slice, deferred repair) and the finger store's monotone-prefix
    /// batch path must emit a bit-identical result stream to the
    /// per-tuple path, including allowed-lateness drops.
    #[test]
    fn ooo_grid_batched_matches_per_tuple(
        raw in prop::collection::vec((0i64..3_000, -50i64..50), 1..250),
        lateness_i in 0usize..3,
        disorder_i in 0usize..4,
        batch_i in 0usize..3,
        length in 2i64..60,
        slide in 1i64..30,
        seed in 0u64..1_000,
    ) {
        let lateness = [0i64, 50, 500][lateness_i];
        let fraction = [0u8, 5, 20, 50][disorder_i];
        let batch_size = [1usize, 64, 512][batch_i];
        let tuples = sorted(&raw);
        let arrivals = make_out_of_order(
            &tuples,
            OooConfig { fraction_percent: fraction, max_delay: 200, seed, ..Default::default() },
        );
        let elements = with_watermarks(&arrivals, 40, 80);
        let queries: Vec<Box<dyn Fn() -> Box<dyn WindowFunction>>> = vec![
            Box::new(move || Box::new(TumblingWindow::new(length))),
            Box::new(move || Box::new(SlidingWindow::new(length.max(slide), slide))),
        ];
        for (name, mut per_tuple, mut batched) in
            techniques(&queries, StreamOrder::OutOfOrder, lateness)
        {
            let a = drive_per_tuple(per_tuple.as_mut(), &elements);
            let b = drive_batched(batched.as_mut(), &elements, batch_size);
            prop_assert_eq!(
                a, b,
                "{} diverged: lateness {} disorder {}% batch {}",
                name, lateness, fraction, batch_size
            );
        }
    }

    /// Out-of-order sessions: late tuples split gap slices, so batched
    /// late runs straddle slice splits and the grouping path must fall
    /// back per-tuple for context-aware workloads without changing any
    /// emission or merge/split decision.
    #[test]
    fn ooo_sessions_batched_matches_per_tuple(
        raw in prop::collection::vec((0i64..2_000, -50i64..50), 1..150),
        gap in 5i64..80,
        lateness_i in 0usize..3,
        batch_i in 0usize..3,
        fraction in 5u8..50,
        seed in 0u64..1_000,
    ) {
        let lateness = [0i64, 50, 500][lateness_i];
        let batch_size = [1usize, 64, 512][batch_i];
        let tuples = sorted(&raw);
        let arrivals = make_out_of_order(
            &tuples,
            OooConfig { fraction_percent: fraction, max_delay: 150, seed, ..Default::default() },
        );
        let elements = with_watermarks(&arrivals, 40, 80);
        let queries: Vec<Box<dyn Fn() -> Box<dyn WindowFunction>>> = vec![
            Box::new(move || Box::new(SessionWindow::new(gap))),
        ];
        for (name, mut per_tuple, mut batched) in
            techniques(&queries, StreamOrder::OutOfOrder, lateness)
        {
            let a = drive_per_tuple(per_tuple.as_mut(), &elements);
            let b = drive_batched(batched.as_mut(), &elements, batch_size);
            prop_assert_eq!(
                a, b,
                "{} diverged: gap {} lateness {} batch {}",
                name, gap, lateness, batch_size
            );
        }
    }

    /// FlatFAT deferred repair: a random interleaving of
    /// `update_deferred`/`push_deferred` plus `repair_dirty` must leave
    /// the tree indistinguishable from eager `update`/`push` — same
    /// total, same range queries.
    #[test]
    fn flatfat_deferred_repair_matches_eager_update(
        init in prop::collection::vec(-100i64..100, 1..64),
        ops in prop::collection::vec((0u8..4, 0usize..256, -100i64..100), 1..200),
    ) {
        use general_stream_slicing::core::FlatFat;
        let mut eager = FlatFat::new(Sum);
        let mut deferred = FlatFat::new(Sum);
        for &v in &init {
            eager.push(Some(v));
            deferred.push(Some(v));
        }
        for (step, &(sel, idx, v)) in ops.iter().enumerate() {
            match sel {
                0 | 1 => {
                    let i = idx % eager.len();
                    eager.update(i, Some(v));
                    deferred.update_deferred(i, Some(v));
                }
                2 => {
                    eager.push(Some(v));
                    deferred.push_deferred(Some(v));
                }
                _ => deferred.repair_dirty(),
            }
            if step % 7 == 0 {
                deferred.repair_dirty();
                prop_assert_eq!(eager.total(), deferred.total(), "total diverged at {}", step);
            }
        }
        deferred.repair_dirty();
        prop_assert!(!deferred.has_dirty());
        let n = eager.len();
        prop_assert_eq!(n, deferred.len());
        for l in 0..n {
            for r in (l + 1..=n).step_by(3) {
                prop_assert_eq!(eager.query(l, r), deferred.query(l, r), "query {}..{}", l, r);
            }
        }
    }

    /// Long-lateness regime: allowed lateness (100_000 ticks) is four to
    /// five orders of magnitude above the slice width (slide 1..4 over a
    /// ~6_000 tick span anchored at both ends), so *nothing* is ever
    /// evicted and the whole timeline stays live — thousands of slices,
    /// far past the finger store's `INDEX_SCAN_CUTOFF` (32). That forces
    /// the adaptive index build and routes deep out-of-order arrivals
    /// (delays up to 3_000 ticks) as deferred writes into the *built*
    /// tree, repaired at query time. Lazy, eager, and finger stores must
    /// emit bit-identical result streams on both the per-tuple and the
    /// batched drivers.
    #[test]
    fn long_lateness_stores_bit_identical(
        raw in prop::collection::vec((0i64..6_000, -50i64..50), 40..160),
        slide in 1i64..4,
        win_mult in 2i64..20,
        batch_i in 0usize..3,
        fraction in 10u8..60,
        seed in 0u64..1_000,
    ) {
        const LATENESS: Time = 100_000;
        let batch_size = [1usize, 64, 512][batch_i];
        let mut raw = raw;
        // Anchor the span so the live-slice count is span/slide >= 1_500
        // regardless of what the generator drew.
        raw.push((0, 1));
        raw.push((5_999, 1));
        let tuples = sorted(&raw);
        let arrivals = make_out_of_order(
            &tuples,
            OooConfig { fraction_percent: fraction, max_delay: 3_000, seed, ..Default::default() },
        );
        let elements = with_watermarks(&arrivals, 40, 80);
        let length = slide * win_mult;
        let queries: Vec<Box<dyn Fn() -> Box<dyn WindowFunction>>> = vec![
            Box::new(move || Box::new(SlidingWindow::new(length, slide))),
        ];
        let stores = [StorePolicy::Lazy, StorePolicy::Eager, StorePolicy::FingerTree];
        let drive = |policy: StorePolicy, batched: bool| {
            let mut op = WindowOperator::new(
                Sum,
                OperatorConfig {
                    order: StreamOrder::OutOfOrder,
                    policy,
                    allowed_lateness: LATENESS,
                    ..OperatorConfig::default()
                },
            );
            for q in &queries {
                op.add_query(q()).unwrap();
            }
            if batched {
                drive_batched(&mut op, &elements, batch_size)
            } else {
                drive_per_tuple(&mut op, &elements)
            }
        };
        let reference = drive(StorePolicy::Lazy, false);
        for policy in stores {
            for batched in [false, true] {
                prop_assert_eq!(
                    &drive(policy, batched), &reference,
                    "{:?} (batched={}) diverged: slide {} length {} batch {}",
                    policy, batched, slide, length, batch_size
                );
            }
        }
    }
}

// ---------------------------------------------------------------------
// Bulk-fold kernels and chunked pipeline equivalence.

/// Sorted, Debug-normalized keyed pipeline output: one entry per emitted
/// window result, tagged with its partition. Debug formatting gives a
/// total, exact comparison across output types (f64 included: the kernels
/// are bit-identical by contract, so even float results must match).
type KeyedOut = Vec<(usize, QueryId, Time, Time, String)>;

fn keyed_cfg(mode: usize, batch: usize) -> PipelineConfig {
    let base = PipelineConfig::with_parallelism(3);
    match mode {
        0 => base.per_tuple().with_batch_size(batch.max(16)),
        1 => base.with_batch_size(batch),
        // A far-future deadline keeps the adaptive run deterministic: it
        // chunks exactly like `Fixed(batch)` while still exercising the
        // adaptive bookkeeping.
        _ => base.adaptive(batch, Duration::from_secs(3600)),
    }
}

fn run_keyed_mode<A>(
    f: &A,
    elements: &[StreamElement<(u64, A::Input)>],
    length: i64,
    slide: i64,
    lateness: Time,
    cfg: PipelineConfig,
) -> KeyedOut
where
    A: AggregateFunction<Input = i64> + 'static,
    A::Output: Send + std::fmt::Debug,
{
    let report = run_keyed(elements.iter().cloned(), cfg, |_partition| {
        let mut op = WindowOperator::new(
            f.clone(),
            OperatorConfig {
                order: StreamOrder::OutOfOrder,
                allowed_lateness: lateness,
                ..OperatorConfig::default()
            },
        );
        op.add_query(Box::new(TumblingWindow::new(length))).unwrap();
        op.add_query(Box::new(SlidingWindow::new(length.max(slide), slide))).unwrap();
        Box::new(op)
    });
    let mut out: KeyedOut = report
        .results
        .iter()
        .map(|(p, r)| (*p, r.query, r.range.start, r.range.end, format!("{:?}", r.value)))
        .collect();
    out.sort();
    out
}

/// Batched (fixed and adaptive) keyed runs must match; when `exact` (an
/// integer-partial aggregate, where every fold tree yields the same
/// bits), the per-tuple operator path must match them too.
#[allow(clippy::too_many_arguments)]
fn check_keyed_modes<A>(
    f: &A,
    name: &str,
    elements: &[StreamElement<(u64, i64)>],
    length: i64,
    slide: i64,
    lateness: Time,
    batch: usize,
    exact: bool,
) where
    A: AggregateFunction<Input = i64> + 'static,
    A::Output: Send + std::fmt::Debug,
{
    let fixed = run_keyed_mode(f, elements, length, slide, lateness, keyed_cfg(1, batch));
    let adaptive = run_keyed_mode(f, elements, length, slide, lateness, keyed_cfg(2, batch));
    assert_eq!(fixed, adaptive, "{name}: adaptive batching diverged from fixed at batch {batch}");
    if exact {
        let per_tuple = run_keyed_mode(f, elements, length, slide, lateness, keyed_cfg(0, batch));
        assert_eq!(fixed, per_tuple, "{name}: batched diverged from per-tuple at batch {batch}");
    }
}

/// Final (last-emitted) value per window, Debug-normalized.
type Finals = BTreeMap<(QueryId, Time, Time), String>;

fn sequential_finals<A>(
    f: &A,
    elements: &[StreamElement<i64>],
    length: i64,
    lateness: Time,
) -> Finals
where
    A: AggregateFunction<Input = i64> + 'static,
    A::Output: std::fmt::Debug,
{
    let mut op = WindowOperator::new(
        f.clone(),
        OperatorConfig {
            order: StreamOrder::OutOfOrder,
            allowed_lateness: lateness,
            ..OperatorConfig::default()
        },
    );
    op.add_query(Box::new(SlidingWindow::new(length, length / 2))).unwrap();
    let mut out = Vec::new();
    let mut finals = Finals::new();
    for e in elements {
        match e {
            StreamElement::Record { ts, value } => op.process(*ts, *value, &mut out),
            StreamElement::Watermark(wm) => op.on_watermark(*wm, &mut out),
            _ => {}
        }
        for r in out.drain(..) {
            finals.insert((r.query, r.range.start, r.range.end), format!("{:?}", r.value));
        }
    }
    finals
}

fn parallel_finals<A>(
    f: &A,
    elements: &[StreamElement<i64>],
    length: i64,
    lateness: Time,
    cfg: PipelineConfig,
) -> Finals
where
    A: AggregateFunction<Input = i64> + 'static,
    A::Output: Send + std::fmt::Debug,
{
    let report = run_parallel(
        elements.iter().cloned(),
        cfg,
        f.clone(),
        vec![Box::new(SlidingWindow::new(length, length / 2))],
        OperatorConfig {
            order: StreamOrder::OutOfOrder,
            allowed_lateness: lateness,
            ..OperatorConfig::default()
        },
    );
    let mut finals = Finals::new();
    for (_, r) in &report.results {
        finals.insert((r.query, r.range.start, r.range.end), format!("{:?}", r.value));
    }
    finals
}

fn check_parallel_modes<A>(
    f: &A,
    name: &str,
    elements: &[StreamElement<i64>],
    length: i64,
    lateness: Time,
    batch: usize,
    workers: usize,
) where
    A: AggregateFunction<Input = i64> + 'static,
    A::Output: Send + std::fmt::Debug,
{
    let seq = sequential_finals(f, elements, length, lateness);
    for mode in 0..3 {
        let cfg = match mode {
            0 => {
                PipelineConfig::with_parallelism(workers).per_tuple().with_batch_size(batch.max(16))
            }
            1 => PipelineConfig::with_parallelism(workers).with_batch_size(batch),
            _ => {
                PipelineConfig::with_parallelism(workers).adaptive(batch, Duration::from_secs(3600))
            }
        };
        let par = parallel_finals(f, elements, length, lateness, cfg);
        assert_eq!(
            seq, par,
            "{name}: parallel finals diverged from sequential (mode {mode}, batch {batch}, \
             {workers} workers)"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every integer-partial aggregate's `fold_slice` — lane kernel or
    /// default — must be bit-identical to the reference lift/combine
    /// fold. Exercised on every prefix length of the generated run, so
    /// the sweep straddles each function's `kernel_min_run` gate and
    /// includes the empty run; the narrow value range forces extremum
    /// ties across lane boundaries for the mincount/maxcount tie passes.
    #[test]
    fn integer_fold_kernels_bit_identical_to_default(
        values in prop::collection::vec(-40i64..40, 0..300),
    ) {
        macro_rules! check {
            ($f:expr, $name:expr, $run:expr) => {{
                let f = $f;
                let kernel = f.fold_slice($run).map(|p| format!("{:?}", p));
                let reference = default_fold_slice(&f, $run).map(|p| format!("{:?}", p));
                prop_assert_eq!(
                    kernel, reference,
                    "{} diverged from the default fold at len {}", $name, $run.len()
                );
            }};
        }
        let gate = FOLD_KERNEL_MIN_RUN;
        let mut lens: Vec<usize> =
            vec![0, 1, 2, gate - 1, gate, gate + 1, values.len()];
        lens.retain(|&l| l <= values.len());
        for &len in &lens {
            let run = &values[..len];
            check!(CountAgg, "count", run);
            check!(Sum, "sum", run);
            check!(SumNoInvert, "sum-no-invert", run);
            check!(Avg, "avg", run);
            check!(Min, "min", run);
            check!(Max, "max", run);
            check!(MinCount, "mincount", run);
            check!(MaxCount, "maxcount", run);
            check!(GeometricMean, "geometric-mean", run);
        }
        prop_assert!(
            Sum.has_fold_kernel() && Min.has_fold_kernel() && Max.has_fold_kernel()
                && MinCount.has_fold_kernel() && MaxCount.has_fold_kernel(),
            "sum/min/max/mincount/maxcount must carry hand-written kernels"
        );
        prop_assert!(
            !GeometricMean.has_fold_kernel(),
            "geometric mean stays on the default fold by design"
        );
    }

    /// The paired-column kernels (argmin/argmax lexicographic lanes, m4
    /// order-preserving block split) must be bit-identical to the default
    /// fold over the value column — including first-tie/smallest-arg
    /// tie-breaks, non-monotone timestamps, and every gate-straddling
    /// prefix length around their `kernel_min_run` of 8.
    #[test]
    fn paired_fold_kernels_bit_identical_to_default(
        pairs in prop::collection::vec((-10i64..10, -1_000i64..1_000), 0..300),
    ) {
        prop_assert!(ArgMin.has_pair_kernel() && ArgMax.has_pair_kernel());
        prop_assert!(M4.has_pair_kernel());
        prop_assert!(!ArgMin.has_fold_kernel(), "argmin's kernel lives on the paired hook");
        let times: Vec<Time> = (0..pairs.len() as Time).collect();
        // M4 input reinterprets the pair as (ts, value): a narrow
        // timestamp range with plenty of duplicates, arriving unsorted.
        let stamped: Vec<(Time, i64)> = pairs.iter().map(|&(a, b)| (a + 10, b)).collect();
        let mut lens: Vec<usize> = vec![0, 1, 7, 8, 9, 31, 32, 33, pairs.len()];
        lens.retain(|&l| l <= pairs.len());
        for &len in &lens {
            let t = &times[..len];
            prop_assert_eq!(
                ArgMin.fold_slice_pairs(t, &pairs[..len]),
                default_fold_slice(&ArgMin, &pairs[..len]),
                "argmin diverged at len {}", len
            );
            prop_assert_eq!(
                ArgMax.fold_slice_pairs(t, &pairs[..len]),
                default_fold_slice(&ArgMax, &pairs[..len]),
                "argmax diverged at len {}", len
            );
            prop_assert_eq!(
                M4.fold_slice_pairs(t, &stamped[..len]),
                default_fold_slice(&M4, &stamped[..len]),
                "m4 diverged at len {}", len
            );
        }
    }

    /// The f64 moments kernel is *reassociated* (strided lanes, pairwise
    /// lane reduction), so it is not bit-identical to the sequential
    /// fold. The policy it must uphold instead: deterministic across
    /// calls (fixed lane shape — same input, same bits) and ulp-bounded
    /// against the sequential reference, with the count exact. Values
    /// are wide enough that squares exceed 2^53 and genuinely round.
    #[test]
    fn float_moments_kernel_deterministic_and_ulp_bounded(
        values in prop::collection::vec(-100_000_000i64..100_000_000, 1..300),
    ) {
        use general_stream_slicing::aggregates::MomentsPartial;
        let kernel: MomentsPartial = match SampleStdDev.fold_slice(&values) {
            Some(p) => p,
            None => return Err(TestCaseError::fail("non-empty run folded to nothing")),
        };
        // Determinism: a second call over a fresh copy of the input
        // reproduces the exact same bits.
        let again = SampleStdDev.fold_slice(&values.clone()).map(|p| {
            (p.count, p.sum.to_bits(), p.sum_sq.to_bits())
        });
        prop_assert_eq!(
            again,
            Some((kernel.count, kernel.sum.to_bits(), kernel.sum_sq.to_bits())),
            "moments kernel is not deterministic"
        );
        // Both stddev flavors share the one moments kernel.
        prop_assert_eq!(PopulationStdDev.fold_slice(&values), Some(kernel));
        // Ulp bound vs the sequential lift/combine reference:
        // |err| <= n * eps * sum(|x_i|) for the sum (and the squared
        // magnitudes for sum_sq), the standard bound for any
        // reassociation of an n-term float sum.
        let seq = match default_fold_slice(&SampleStdDev, &values) {
            Some(p) => p,
            None => return Err(TestCaseError::fail("reference fold of a non-empty run")),
        };
        prop_assert_eq!(kernel.count, seq.count, "count must stay exact");
        let n = values.len() as f64;
        let abs_sum: f64 = values.iter().map(|&v| (v as f64).abs()).sum();
        let abs_sq: f64 = values.iter().map(|&v| (v as f64) * (v as f64)).sum();
        let tol_sum = (n * f64::EPSILON * abs_sum).max(f64::EPSILON);
        let tol_sq = (n * f64::EPSILON * abs_sq).max(f64::EPSILON);
        prop_assert!(
            (kernel.sum - seq.sum).abs() <= tol_sum,
            "sum drifted past the ulp bound: kernel {} vs seq {} (tol {})",
            kernel.sum, seq.sum, tol_sum
        );
        prop_assert!(
            (kernel.sum_sq - seq.sum_sq).abs() <= tol_sq,
            "sum_sq drifted past the ulp bound: kernel {} vs seq {} (tol {})",
            kernel.sum_sq, seq.sum_sq, tol_sq
        );
    }

    /// Keyed pipeline grid: functions × batch sizes × disorder. Fixed and
    /// adaptive batching must agree bit-for-bit for every function; the
    /// per-tuple operator path must agree for integer-partial functions
    /// (float fold trees legitimately differ across ingestion paths, but
    /// not across chunkings).
    #[test]
    fn keyed_pipeline_batching_modes_agree(
        raw in prop::collection::vec((0i64..2_000, -50i64..50), 1..150),
        fraction in 0u8..50,
        batch_i in 0usize..3,
        func_i in 0usize..5,
        length in 2i64..50,
        slide in 1i64..25,
        seed in 0u64..500,
    ) {
        let batch = [1usize, 64, 512][batch_i];
        let lateness = 200;
        let tuples = sorted(&raw);
        let arrivals = make_out_of_order(
            &tuples,
            OooConfig { fraction_percent: fraction, max_delay: 100, seed, ..Default::default() },
        );
        let mut keyed: Vec<StreamElement<(u64, i64)>> =
            with_watermarks(&arrivals, 50, 100)
                .iter()
                .map(|e| match e {
                    StreamElement::Record { ts, value } => {
                        StreamElement::Record { ts: *ts, value: (ts.unsigned_abs() % 8, *value) }
                    }
                    StreamElement::Watermark(wm) => StreamElement::Watermark(*wm),
                    StreamElement::Punctuation(p) => StreamElement::Punctuation(*p),
                })
                .collect();
        keyed.push(StreamElement::Watermark(i64::MAX - 1));
        match func_i {
            0 => check_keyed_modes(&Sum, "sum", &keyed, length, slide, lateness, batch, true),
            1 => check_keyed_modes(&Min, "min", &keyed, length, slide, lateness, batch, true),
            2 => check_keyed_modes(&Avg, "avg", &keyed, length, slide, lateness, batch, true),
            3 => check_keyed_modes(&CountAgg, "count", &keyed, length, slide, lateness, batch, true),
            _ => check_keyed_modes(
                &SampleStdDev, "stddev", &keyed, length, slide, lateness, batch, false,
            ),
        }
    }

    /// Parallel pipeline grid: the two-stage worker/merge path (with its
    /// span-folding ingestion) must reach the same final window values as
    /// one sequential per-tuple operator, for every batching mode and
    /// batch size, under disorder. Integer-partial functions only: the
    /// parallel combine tree is shaped by worker interleaving, so float
    /// outputs are not bit-stable across runs by construction.
    #[test]
    fn parallel_pipeline_matches_sequential_finals(
        raw in prop::collection::vec((0i64..2_000, -50i64..50), 1..150),
        fraction in 0u8..40,
        batch_i in 0usize..3,
        func_i in 0usize..4,
        length in 4i64..60,
        workers in 1usize..4,
        seed in 0u64..500,
    ) {
        let batch = [1usize, 64, 512][batch_i];
        let lateness = 200;
        let tuples = sorted(&raw);
        let arrivals = make_out_of_order(
            &tuples,
            OooConfig { fraction_percent: fraction, max_delay: 100, seed, ..Default::default() },
        );
        let mut elements = with_watermarks(&arrivals, 50, 100);
        elements.push(StreamElement::Watermark(i64::MAX - 1));
        match func_i {
            0 => check_parallel_modes(&Sum, "sum", &elements, length, lateness, batch, workers),
            1 => check_parallel_modes(&Min, "min", &elements, length, lateness, batch, workers),
            2 => check_parallel_modes(&Avg, "avg", &elements, length, lateness, batch, workers),
            _ => check_parallel_modes(
                &CountAgg, "count", &elements, length, lateness, batch, workers,
            ),
        }
    }
}
