//! Property tests for the batched ingestion fast path: for every
//! technique, [`WindowAggregator::process_batch`] must produce the
//! *identical* result stream to per-tuple [`WindowAggregator::process`]
//! — same windows, same values, same order — across random batch sizes,
//! in-order and out-of-order inputs, lazy and eager stores, and
//! context-free, context-aware, and count-based queries.

use general_stream_slicing::prelude::*;
use proptest::prelude::*;

type Emitted = Vec<(QueryId, Time, Time, i64)>;
/// `(name, per-tuple instance, batched instance)` for one technique.
type TechniquePair = (&'static str, Box<dyn WindowAggregator<Sum>>, Box<dyn WindowAggregator<Sum>>);

fn sorted(tuples: &[(Time, i64)]) -> Vec<(Time, i64)> {
    let mut s: Vec<(usize, (Time, i64))> = tuples.iter().copied().enumerate().collect();
    s.sort_by_key(|(i, (t, _))| (*t, *i));
    s.into_iter().map(|(_, t)| t).collect()
}

fn drive_per_tuple(
    agg: &mut dyn WindowAggregator<Sum>,
    elements: &[StreamElement<i64>],
) -> Emitted {
    let mut out = Vec::new();
    let mut emitted = Emitted::new();
    for e in elements {
        match e {
            StreamElement::Record { ts, value } => agg.process(*ts, *value, &mut out),
            StreamElement::Watermark(wm) => agg.on_watermark(*wm, &mut out),
            _ => {}
        }
        emitted.extend(out.drain(..).map(|r| (r.query, r.range.start, r.range.end, r.value)));
    }
    emitted
}

/// Feeds records in chunks of `batch_size` through `process_batch`,
/// flushing the pending chunk before each watermark (like the pipeline
/// source does) so watermark placement relative to records is preserved.
fn drive_batched(
    agg: &mut dyn WindowAggregator<Sum>,
    elements: &[StreamElement<i64>],
    batch_size: usize,
) -> Emitted {
    let batch_size = batch_size.max(1);
    let mut out = Vec::new();
    let mut emitted = Emitted::new();
    let mut buf: Vec<(Time, i64)> = Vec::new();
    let flush = |buf: &mut Vec<(Time, i64)>,
                 agg: &mut dyn WindowAggregator<Sum>,
                 out: &mut Vec<WindowResult<i64>>| {
        if !buf.is_empty() {
            agg.process_batch(buf, out);
            buf.clear();
        }
    };
    for e in elements {
        match e {
            StreamElement::Record { ts, value } => {
                buf.push((*ts, *value));
                if buf.len() >= batch_size {
                    flush(&mut buf, agg, &mut out);
                }
            }
            StreamElement::Watermark(wm) => {
                flush(&mut buf, agg, &mut out);
                agg.on_watermark(*wm, &mut out);
            }
            _ => {}
        }
        emitted.extend(out.drain(..).map(|r| (r.query, r.range.start, r.range.end, r.value)));
    }
    flush(&mut buf, agg, &mut out);
    emitted.extend(out.drain(..).map(|r| (r.query, r.range.start, r.range.end, r.value)));
    emitted
}

/// One factory per technique, so per-tuple and batched drivers each get a
/// fresh, identically configured aggregator.
fn techniques(
    queries: &[Box<dyn Fn() -> Box<dyn WindowFunction>>],
    order: StreamOrder,
    lateness: Time,
) -> Vec<TechniquePair> {
    let slicing = |policy: StorePolicy| {
        let mut op = WindowOperator::new(
            Sum,
            OperatorConfig {
                order,
                policy,
                allowed_lateness: lateness,
                ..OperatorConfig::default()
            },
        );
        for q in queries {
            op.add_query(q()).unwrap();
        }
        Box::new(op) as Box<dyn WindowAggregator<Sum>>
    };
    let buckets = |mode: BucketMode| {
        let mut b = Buckets::new(Sum, mode, order, lateness);
        for q in queries {
            b.add_query(q());
        }
        Box::new(b) as Box<dyn WindowAggregator<Sum>>
    };
    let tuple_buffer = || {
        let mut t = TupleBuffer::new(Sum, order, lateness);
        for q in queries {
            t.add_query(q());
        }
        Box::new(t) as Box<dyn WindowAggregator<Sum>>
    };
    let tree = || {
        let mut t = AggregateTree::new(Sum, order, lateness);
        for q in queries {
            t.add_query(q());
        }
        Box::new(t) as Box<dyn WindowAggregator<Sum>>
    };
    vec![
        ("lazy", slicing(StorePolicy::Lazy), slicing(StorePolicy::Lazy)),
        ("eager", slicing(StorePolicy::Eager), slicing(StorePolicy::Eager)),
        ("buckets", buckets(BucketMode::Aggregate), buckets(BucketMode::Aggregate)),
        ("tuple-buckets", buckets(BucketMode::Tuple), buckets(BucketMode::Tuple)),
        ("tuple-buffer", tuple_buffer(), tuple_buffer()),
        ("aggregate-tree", tree(), tree()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// In-order, context-free time windows (the fast path's home turf):
    /// the batched result stream is byte-identical to per-tuple.
    #[test]
    fn batch_matches_per_tuple_in_order(
        raw in prop::collection::vec((0i64..2_000, -50i64..50), 1..200),
        length in 1i64..50,
        slide in 1i64..50,
        batch_size in 1usize..70,
    ) {
        let tuples = sorted(&raw);
        let elements: Vec<StreamElement<i64>> =
            tuples.iter().map(|&(ts, value)| StreamElement::Record { ts, value }).collect();
        let queries: Vec<Box<dyn Fn() -> Box<dyn WindowFunction>>> = vec![
            Box::new(move || Box::new(TumblingWindow::new(length))),
            Box::new(move || Box::new(SlidingWindow::new(length.max(slide), slide))),
        ];
        for (name, mut per_tuple, mut batched) in
            techniques(&queries, StreamOrder::InOrder, 0)
        {
            let a = drive_per_tuple(per_tuple.as_mut(), &elements);
            let b = drive_batched(batched.as_mut(), &elements, batch_size);
            prop_assert_eq!(a, b, "{} diverged at batch size {}", name, batch_size);
        }
    }

    /// Context-aware (session) and count-based queries in the mix: the
    /// fast paths must detect ineligibility and fall back without
    /// changing a single emission.
    #[test]
    fn batch_matches_per_tuple_with_session_and_count(
        raw in prop::collection::vec((0i64..2_000, -50i64..50), 1..150),
        gap in 1i64..60,
        count_len in 1u64..20,
        batch_size in 1usize..70,
    ) {
        let tuples = sorted(&raw);
        let elements: Vec<StreamElement<i64>> =
            tuples.iter().map(|&(ts, value)| StreamElement::Record { ts, value }).collect();
        let queries: Vec<Box<dyn Fn() -> Box<dyn WindowFunction>>> = vec![
            Box::new(move || Box::new(SessionWindow::new(gap))),
            Box::new(move || Box::new(CountTumblingWindow::new(count_len))),
        ];
        for (name, mut per_tuple, mut batched) in
            techniques(&queries, StreamOrder::InOrder, 0)
        {
            let a = drive_per_tuple(per_tuple.as_mut(), &elements);
            let b = drive_batched(batched.as_mut(), &elements, batch_size);
            prop_assert_eq!(a, b, "{} diverged at batch size {}", name, batch_size);
        }
    }

    /// Out-of-order arrivals with watermarks: batches contain unsorted
    /// records, so runs break at every inversion; results must still be
    /// identical, including late-tuple window updates.
    #[test]
    fn batch_matches_per_tuple_out_of_order(
        raw in prop::collection::vec((0i64..2_000, -50i64..50), 1..150),
        length in 2i64..50,
        fraction in 0u8..60,
        batch_size in 1usize..70,
    ) {
        let tuples = sorted(&raw);
        let arrivals = make_out_of_order(
            &tuples,
            OooConfig { fraction_percent: fraction, max_delay: 100, ..Default::default() },
        );
        let elements = with_watermarks(&arrivals, 50, 100);
        let queries: Vec<Box<dyn Fn() -> Box<dyn WindowFunction>>> = vec![
            Box::new(move || Box::new(TumblingWindow::new(length))),
        ];
        for (name, mut per_tuple, mut batched) in
            techniques(&queries, StreamOrder::OutOfOrder, 10_000)
        {
            let a = drive_per_tuple(per_tuple.as_mut(), &elements);
            let b = drive_batched(batched.as_mut(), &elements, batch_size);
            prop_assert_eq!(a, b, "{} diverged at batch size {}", name, batch_size);
        }
    }

    /// Pairs and Cutty use the default `process_batch` (a per-tuple
    /// loop); pin that the default impl preserves the stream too.
    #[test]
    fn batch_default_impl_matches_for_pairs_and_cutty(
        raw in prop::collection::vec((0i64..2_000, -50i64..50), 1..150),
        length in 1i64..50,
        slide in 1i64..50,
        batch_size in 1usize..70,
    ) {
        let tuples = sorted(&raw);
        let elements: Vec<StreamElement<i64>> =
            tuples.iter().map(|&(ts, value)| StreamElement::Record { ts, value }).collect();
        let (length, slide) = (length.max(slide), slide);

        let mut p1 = Pairs::new(Sum);
        p1.add_query(length, slide);
        let mut p2 = Pairs::new(Sum);
        p2.add_query(length, slide);
        let a = drive_per_tuple(&mut p1, &elements);
        let b = drive_batched(&mut p2, &elements, batch_size);
        prop_assert_eq!(a, b, "pairs diverged at batch size {}", batch_size);

        let mut c1 = Cutty::new(Sum);
        c1.add_query(Box::new(SlidingWindow::new(length, slide)));
        let mut c2 = Cutty::new(Sum);
        c2.add_query(Box::new(SlidingWindow::new(length, slide)));
        let a = drive_per_tuple(&mut c1, &elements);
        let b = drive_batched(&mut c2, &elements, batch_size);
        prop_assert_eq!(a, b, "cutty diverged at batch size {}", batch_size);
    }
}
