//! Property tests across techniques: every aggregation technique must
//! produce the same final windows as a brute-force oracle on randomized
//! in-order workloads, and the out-of-order-capable ones on randomized
//! disordered workloads.

use general_stream_slicing::prelude::*;
use proptest::prelude::*;
use std::collections::BTreeMap;

fn sorted(tuples: &[(Time, i64)]) -> Vec<(Time, i64)> {
    let mut s: Vec<(usize, (Time, i64))> = tuples.iter().copied().enumerate().collect();
    s.sort_by_key(|(i, (t, _))| (*t, *i));
    s.into_iter().map(|(_, t)| t).collect()
}

fn oracle(tuples: &[(Time, i64)], start: Time, end: Time) -> Option<i64> {
    let vs: Vec<i64> =
        tuples.iter().filter(|(t, _)| *t >= start && *t < end).map(|(_, v)| *v).collect();
    if vs.is_empty() {
        None
    } else {
        Some(vs.iter().sum())
    }
}

fn drive_in_order(
    agg: &mut dyn WindowAggregator<Sum>,
    tuples: &[(Time, i64)],
) -> BTreeMap<(QueryId, Time, Time), i64> {
    let mut out = Vec::new();
    let mut finals = BTreeMap::new();
    for &(ts, v) in tuples {
        agg.process(ts, v, &mut out);
        for r in out.drain(..) {
            finals.insert((r.query, r.range.start, r.range.end), r.value);
        }
    }
    finals
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// In-order: all seven techniques agree with the oracle (and hence
    /// with each other) for a random sliding-window workload.
    #[test]
    fn every_technique_matches_oracle_in_order(
        raw in prop::collection::vec((0i64..1_500, -50i64..50), 1..150),
        length in 1i64..50,
        slide in 1i64..50,
    ) {
        let tuples = sorted(&raw);

        let make: Vec<(&str, Box<dyn WindowAggregator<Sum>>)> = vec![
            ("lazy", {
                let mut op = WindowOperator::new(Sum, OperatorConfig::in_order());
                op.add_query(Box::new(SlidingWindow::new(length, slide))).unwrap();
                Box::new(op)
            }),
            ("eager", {
                let mut op = WindowOperator::new(
                    Sum,
                    OperatorConfig::in_order().with_policy(StorePolicy::Eager),
                );
                op.add_query(Box::new(SlidingWindow::new(length, slide))).unwrap();
                Box::new(op)
            }),
            ("pairs", {
                let mut p = Pairs::new(Sum);
                p.add_query(length, slide);
                Box::new(p)
            }),
            ("panes", {
                let mut p = Panes::new(Sum);
                p.add_query(length, slide);
                Box::new(p)
            }),
            ("cutty", {
                let mut c = Cutty::new(Sum);
                c.add_query(Box::new(SlidingWindow::new(length, slide)));
                Box::new(c)
            }),
            ("two-stacks", Box::new(TwoStacksSliding::new(Sum, length, slide))),
            ("buckets", {
                let mut b = Buckets::new(Sum, BucketMode::Aggregate, StreamOrder::InOrder, 0);
                b.add_query(Box::new(SlidingWindow::new(length, slide)));
                Box::new(b)
            }),
            ("tuple-buffer", {
                let mut t = TupleBuffer::new(Sum, StreamOrder::InOrder, 0);
                t.add_query(Box::new(SlidingWindow::new(length, slide)));
                Box::new(t)
            }),
            ("aggregate-tree", {
                let mut t = AggregateTree::new(Sum, StreamOrder::InOrder, 0);
                t.add_query(Box::new(SlidingWindow::new(length, slide)));
                Box::new(t)
            }),
        ];

        for (name, mut agg) in make {
            let finals = drive_in_order(agg.as_mut(), &tuples);
            for ((_, start, end), v) in &finals {
                prop_assert_eq!(
                    Some(*v),
                    oracle(&tuples, *start, *end),
                    "{} window [{}, {})", name, start, end
                );
            }
        }
    }

    /// SlickDeque max agrees with the general-slicing max on random
    /// workloads.
    #[test]
    fn slick_deque_matches_slicing_max(
        raw in prop::collection::vec((0i64..1_000, -50i64..50), 1..150),
        length in 1i64..40,
        slide in 1i64..40,
    ) {
        let tuples = sorted(&raw);
        let mut sd = SlickDequeSliding::new_max(length, slide);
        let mut op = WindowOperator::new(Max, OperatorConfig::in_order());
        op.add_query(Box::new(SlidingWindow::new(length, slide))).unwrap();
        let (mut o1, mut o2) = (Vec::new(), Vec::new());
        for &(ts, v) in &tuples {
            sd.process(ts, v, &mut o1);
            op.process_tuple(ts, v, &mut o2);
        }
        let a: BTreeMap<(Time, Time), i64> =
            o1.iter().map(|r| ((r.range.start, r.range.end), r.value)).collect();
        let b: BTreeMap<(Time, Time), i64> =
            o2.iter().map(|r| ((r.range.start, r.range.end), r.value)).collect();
        prop_assert_eq!(a, b);
    }

    /// Out-of-order: slicing, buckets, buffer, and tree converge to the
    /// same final windows under random bounded disorder with watermarks.
    #[test]
    fn ooo_techniques_converge(
        raw in prop::collection::vec((0i64..1_500, -50i64..50), 1..120),
        length in 2i64..40,
        fraction in 0u8..60,
    ) {
        let tuples = sorted(&raw);
        let arrivals = make_out_of_order(
            &tuples,
            OooConfig { fraction_percent: fraction, max_delay: 100, ..Default::default() },
        );
        let elements = with_watermarks(&arrivals, 50, 100);

        let drive = |agg: &mut dyn WindowAggregator<Sum>| {
            let mut out = Vec::new();
            let mut finals: BTreeMap<(Time, Time), i64> = BTreeMap::new();
            for e in &elements {
                match e {
                    StreamElement::Record { ts, value } => agg.process(*ts, *value, &mut out),
                    StreamElement::Watermark(wm) => agg.on_watermark(*wm, &mut out),
                    _ => {}
                }
                for r in out.drain(..) {
                    finals.insert((r.range.start, r.range.end), r.value);
                }
            }
            finals
        };

        let lateness = 10_000;
        let mut op = WindowOperator::new(Sum, OperatorConfig::out_of_order(lateness));
        op.add_query(Box::new(TumblingWindow::new(length))).unwrap();
        let slicing = drive(&mut op);
        for ((s, e), v) in &slicing {
            prop_assert_eq!(Some(*v), oracle(&tuples, *s, *e), "slicing [{}, {})", s, e);
        }

        let mut bk = Buckets::new(Sum, BucketMode::Aggregate, StreamOrder::OutOfOrder, lateness);
        bk.add_query(Box::new(TumblingWindow::new(length)));
        prop_assert_eq!(&drive(&mut bk), &slicing);

        let mut tb = TupleBuffer::new(Sum, StreamOrder::OutOfOrder, lateness);
        tb.add_query(Box::new(TumblingWindow::new(length)));
        prop_assert_eq!(&drive(&mut tb), &slicing);

        let mut at = AggregateTree::new(Sum, StreamOrder::OutOfOrder, lateness);
        at.add_query(Box::new(TumblingWindow::new(length)));
        prop_assert_eq!(&drive(&mut at), &slicing);
    }
}
