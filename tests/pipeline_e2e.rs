//! End-to-end: data generators → disorder → source with watermark
//! strategy → key-partitioned parallel pipeline → window results, checked
//! against a per-key oracle.

use general_stream_slicing::prelude::*;
use gss_core::operator::WindowOperator as Op;
use gss_stream::{key_by, IteratorSource};
use std::collections::BTreeMap;

fn factory(_p: usize) -> Box<dyn WindowAggregator<Sum>> {
    let mut op = Op::new(Sum, OperatorConfig::out_of_order(2_000));
    op.add_query(Box::new(TumblingWindow::new(1_000))).unwrap();
    Box::new(op)
}

#[test]
fn football_through_parallel_pipeline_matches_oracle() {
    // Generate, disorder, and key the stream.
    let tuples = FootballGenerator::new(FootballConfig {
        rate_hz: 1000,
        gaps_per_minute: 0,
        ..Default::default()
    })
    .take(30_000);
    let arrivals = make_out_of_order(
        &tuples,
        OooConfig { fraction_percent: 20, max_delay: 1_000, ..Default::default() },
    );
    let source = IteratorSource::new(
        arrivals.iter().copied(),
        gss_stream::BoundedOutOfOrderness::new(1_000, 250),
    );
    let keyed = key_by(source, |_, v| (v % 8) as u64);

    let report = run_keyed(keyed, PipelineConfig::with_parallelism(4), factory);
    assert_eq!(report.records, 30_000);

    // Oracle: per key, per tumbling window, sum of values.
    let mut oracle: BTreeMap<(u64, Time), i64> = BTreeMap::new();
    for &(ts, v) in &tuples {
        *oracle.entry(((v % 8) as u64, ts.div_euclid(1_000) * 1_000)).or_default() += v;
    }
    // The pipeline loses the key association (results are per-partition),
    // so compare per-partition sums: group oracle keys by partition.
    let mut oracle_by_partition: BTreeMap<(usize, Time), i64> = BTreeMap::new();
    for ((key, start), sum) in oracle {
        let p = gss_stream::partition_of(key, 4);
        *oracle_by_partition.entry((p, start)).or_default() += sum;
    }
    let mut got: BTreeMap<(usize, Time), i64> = BTreeMap::new();
    for (p, r) in &report.results {
        // Updates supersede earlier emissions of the same window.
        got.insert((*p, r.range.start), r.value);
    }
    // Every window the oracle knows and the pipeline emitted must agree
    // (windows at the stream tail may be unemitted only if beyond the
    // final flush — the flush watermark covers everything, so all match).
    for (k, expect) in &oracle_by_partition {
        assert_eq!(got.get(k), Some(expect), "partition/window {k:?}");
    }
}

#[test]
fn machine_data_session_statistics() {
    // In-order machine data with idle gaps: session count and totals via
    // the pipeline must match a direct scan.
    let mut tuples = Vec::new();
    let mut gen = MachineGenerator::new(MachineConfig::default());
    let mut base = 0i64;
    for _ in 0..5 {
        for (ts, v) in gen.take(500) {
            tuples.push((base + ts, v));
        }
        base = tuples.last().unwrap().0 + 10_000; // 10 s idle gap
    }

    let mut op = Op::new(CountAgg, OperatorConfig::in_order());
    op.add_query(Box::new(SessionWindow::new(5_000))).unwrap();
    let mut out = Vec::new();
    for &(ts, v) in &tuples {
        op.process_tuple(ts, v, &mut out);
    }
    // 5 bursts -> 4 closed sessions (the last stays open) of 500 each.
    assert_eq!(out.len(), 4);
    for r in &out {
        assert_eq!(r.value, 500);
    }
}

#[test]
fn dsl_to_pipeline_round_trip() {
    // Queries described in the DSL, executed over a generated stream.
    let queries = [
        QueryDsl::parse("SUM OVER TUMBLE 1s").unwrap(),
        QueryDsl::parse("MAX OVER TUMBLE 1s").unwrap(),
    ];
    let mut t = gss_query::translate(&queries, StreamOrder::InOrder, 0, StorePolicy::Lazy).unwrap();
    let tuples = FootballGenerator::new(FootballConfig {
        rate_hz: 500,
        gaps_per_minute: 0,
        ..Default::default()
    })
    .take(5_000);
    let mut out = Vec::new();
    for &(ts, v) in &tuples {
        t.process_tuple(ts, v, &mut out);
    }
    let sums: BTreeMap<Time, i64> = out
        .iter()
        .filter(|(k, _)| *k == AggKind::Sum)
        .map(|(_, r)| (r.range.start, r.value.as_i64()))
        .collect();
    let maxes: BTreeMap<Time, i64> = out
        .iter()
        .filter(|(k, _)| *k == AggKind::Max)
        .map(|(_, r)| (r.range.start, r.value.as_i64()))
        .collect();
    assert!(!sums.is_empty() && sums.len() == maxes.len());
    for (start, sum) in &sums {
        let window: Vec<i64> = tuples
            .iter()
            .filter(|(ts, _)| (*start..start + 1_000).contains(ts))
            .map(|(_, v)| *v)
            .collect();
        assert_eq!(*sum, window.iter().sum::<i64>(), "sum window {start}");
        assert_eq!(maxes[start], *window.iter().max().unwrap(), "max window {start}");
    }
}
