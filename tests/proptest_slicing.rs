//! Property-based tests: general stream slicing against brute-force
//! oracles, under randomized streams, window parameters, and disorder.

use general_stream_slicing::prelude::*;
use gss_core::testsupport::Concat;
use proptest::prelude::*;
use std::collections::BTreeMap;

/// Sorts tuples by event time (stable) — the canonical stream content.
fn sorted(tuples: &[(Time, i64)]) -> Vec<(Time, i64)> {
    let mut s: Vec<(usize, (Time, i64))> = tuples.iter().copied().enumerate().collect();
    s.sort_by_key(|(i, (t, _))| (*t, *i));
    s.into_iter().map(|(_, t)| t).collect()
}

fn oracle_sum(tuples: &[(Time, i64)], range: Range) -> Option<i64> {
    let vs: Vec<i64> = tuples.iter().filter(|(t, _)| range.contains(*t)).map(|(_, v)| *v).collect();
    if vs.is_empty() {
        None
    } else {
        Some(vs.iter().sum())
    }
}

/// Final value per (query, window) after applying updates in order.
fn finals(results: &[WindowResult<i64>]) -> BTreeMap<(QueryId, Time, Time), i64> {
    let mut m = BTreeMap::new();
    for r in results {
        m.insert((r.query, r.range.start, r.range.end), r.value);
    }
    m
}

/// Bounded-disorder arrival order: every 3rd index is swapped forward by a
/// data-dependent displacement.
fn disorder(tuples: &[(Time, i64)], strength: usize) -> Vec<(Time, i64)> {
    let mut arrivals = tuples.to_vec();
    if strength == 0 || arrivals.len() < 2 {
        return arrivals;
    }
    for i in (0..arrivals.len()).step_by(3) {
        let j = (i + 1 + (i * 7) % strength).min(arrivals.len() - 1);
        arrivals.swap(i, j);
    }
    arrivals
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// In-order sliding windows match the oracle for every emitted window,
    /// and every nonempty complete window is emitted.
    #[test]
    fn in_order_sliding_matches_oracle(
        raw in prop::collection::vec((0i64..2_000, -100i64..100), 1..200),
        length in 1i64..60,
        slide in 1i64..60,
    ) {
        let tuples = sorted(&raw);
        let mut op = WindowOperator::new(Sum, OperatorConfig::in_order());
        op.add_query(Box::new(SlidingWindow::new(length, slide))).unwrap();
        let mut out = Vec::new();
        for &(ts, v) in &tuples {
            op.process_tuple(ts, v, &mut out);
        }
        let max_ts = tuples.last().unwrap().0;
        for r in &out {
            prop_assert_eq!(Some(r.value), oracle_sum(&tuples, r.range),
                "window {} vs oracle", r.range);
        }
        // Completeness: every nonempty window fully before max_ts fires.
        let mut k = (tuples[0].0 - length).div_euclid(slide);
        loop {
            let w = Range::new(k * slide, k * slide + length);
            if w.end > max_ts { break; }
            if let Some(expected) = oracle_sum(&tuples, w) {
                let got = out.iter().find(|r| r.range == w);
                prop_assert!(got.is_some(), "window {} never emitted", w);
                prop_assert_eq!(got.unwrap().value, expected);
            }
            k += 1;
        }
    }

    /// Out-of-order streams converge to the oracle after the flush
    /// watermark, for any bounded disorder.
    #[test]
    fn ooo_sliding_converges_to_oracle(
        raw in prop::collection::vec((0i64..2_000, -100i64..100), 1..200),
        length in 1i64..60,
        slide in 1i64..60,
        strength in 0usize..40,
    ) {
        let tuples = sorted(&raw);
        let arrivals = disorder(&tuples, strength);
        let mut op = WindowOperator::new(Sum, OperatorConfig::out_of_order(1_000_000));
        op.add_query(Box::new(SlidingWindow::new(length, slide))).unwrap();
        let mut out = Vec::new();
        for &(ts, v) in &arrivals {
            op.process_tuple(ts, v, &mut out);
        }
        op.process_watermark(i64::MAX - 1, &mut out);
        for ((_, s, e), v) in finals(&out) {
            prop_assert_eq!(Some(v), oracle_sum(&tuples, Range::new(s, e)),
                "window [{}, {})", s, e);
        }
    }

    /// Eager and lazy stores agree on every workload.
    #[test]
    fn eager_equals_lazy(
        raw in prop::collection::vec((0i64..1_000, -50i64..50), 1..150),
        length in 1i64..40,
        slide in 1i64..40,
        strength in 0usize..20,
    ) {
        let arrivals = disorder(&sorted(&raw), strength);
        let mut all = Vec::new();
        for policy in [StorePolicy::Lazy, StorePolicy::Eager] {
            let mut op = WindowOperator::new(
                Sum, OperatorConfig::out_of_order(1_000_000).with_policy(policy));
            op.add_query(Box::new(SlidingWindow::new(length, slide))).unwrap();
            let mut out = Vec::new();
            for &(ts, v) in &arrivals {
                op.process_tuple(ts, v, &mut out);
            }
            op.process_watermark(i64::MAX - 1, &mut out);
            all.push(finals(&out));
        }
        prop_assert_eq!(&all[0], &all[1]);
    }

    /// Non-commutative aggregation over an out-of-order stream produces
    /// values in exact event-time order (the tuple-storage path).
    #[test]
    fn non_commutative_preserves_event_time_order(
        raw in prop::collection::vec((0i64..500, 0i64..1000), 1..100),
        length in 5i64..100,
        strength in 0usize..30,
    ) {
        let tuples = sorted(&raw);
        let arrivals = disorder(&tuples, strength);
        // Equal timestamps aggregate in *arrival* order; the oracle must
        // use the same tie-break.
        let canon = sorted(&arrivals);
        let mut op = WindowOperator::new(Concat, OperatorConfig::out_of_order(1_000_000));
        op.add_query(Box::new(TumblingWindow::new(length))).unwrap();
        let mut out = Vec::new();
        for &(ts, v) in &arrivals {
            op.process_tuple(ts, v, &mut out);
        }
        op.process_watermark(i64::MAX - 1, &mut out);
        let mut last_per_window: BTreeMap<Time, Vec<i64>> = BTreeMap::new();
        for r in out {
            last_per_window.insert(r.range.start, r.value);
        }
        for (start, got) in last_per_window {
            let range = Range::new(start, start + length);
            let expect: Vec<i64> = canon
                .iter()
                .filter(|(t, _)| range.contains(*t))
                .map(|(_, v)| *v)
                .collect();
            prop_assert_eq!(got, expect, "window {}", range);
        }
    }

    /// Count tumbling windows partition the event-time-sorted stream into
    /// consecutive chunks, regardless of arrival order (Figure 6 shift).
    #[test]
    fn count_windows_chunk_sorted_stream(
        raw in prop::collection::vec((0i64..2_000, -100i64..100), 1..200),
        window in 1u64..30,
        strength in 0usize..30,
    ) {
        let tuples = sorted(&raw);
        let arrivals = disorder(&tuples, strength);
        // Count positions tie-break by arrival order, like the operator.
        let canon = sorted(&arrivals);
        let mut op = WindowOperator::new(Sum, OperatorConfig::out_of_order(1_000_000));
        op.add_query(Box::new(CountTumblingWindow::new(window))).unwrap();
        let mut out = Vec::new();
        for &(ts, v) in &arrivals {
            op.process_tuple(ts, v, &mut out);
        }
        op.process_watermark(i64::MAX - 1, &mut out);
        for ((_, c1, c2), v) in finals(&out) {
            let expect: i64 = canon[c1 as usize..c2 as usize].iter().map(|(_, v)| v).sum();
            prop_assert_eq!(v, expect, "count window [{}, {})", c1, c2);
        }
        // Completeness: every full chunk fires.
        let full = tuples.len() as u64 / window;
        let emitted = out.iter().filter(|r| !r.is_update)
            .map(|r| r.range.start).collect::<std::collections::BTreeSet<_>>();
        prop_assert_eq!(emitted.len() as u64, full);
    }

    /// Sessions computed by slicing equal sessions computed by a direct
    /// scan over the sorted stream.
    #[test]
    fn sessions_match_oracle(
        raw in prop::collection::vec((0i64..3_000, 1i64..100), 1..150),
        gap in 1i64..100,
        strength in 0usize..25,
    ) {
        let tuples = sorted(&raw);
        let arrivals = disorder(&tuples, strength);
        let mut op = WindowOperator::new(Sum, OperatorConfig::out_of_order(1_000_000));
        op.add_query(Box::new(SessionWindow::new(gap).with_retention(1_000_000))).unwrap();
        let mut out = Vec::new();
        for &(ts, v) in &arrivals {
            op.process_tuple(ts, v, &mut out);
        }
        op.process_watermark(i64::MAX - 1, &mut out);
        // Oracle sessions over the sorted tuples.
        let mut oracle: Vec<(Time, Time, i64)> = Vec::new(); // (start, end, sum)
        for &(ts, v) in &tuples {
            match oracle.last_mut() {
                Some((_, end, sum)) if ts < *end => {
                    *end = (*end).max(ts + gap);
                    *sum += v;
                }
                _ => oracle.push((ts, ts + gap, v)),
            }
        }
        let got = finals(&out);
        prop_assert_eq!(got.len(), oracle.len(), "session count");
        for (start, end, sum) in oracle {
            prop_assert_eq!(got.get(&(0, start, end)), Some(&sum),
                "session [{}, {})", start, end);
        }
        // Sessions never require tuple storage on their own.
        prop_assert!(!op.store().keeps_tuples());
    }

    /// The slicing invariant: slice edges are distinct, ordered, and the
    /// number of live slices stays bounded by the query horizon.
    #[test]
    fn slices_are_ordered_and_minimal(
        raw in prop::collection::vec((0i64..5_000, -10i64..10), 10..300),
        length in 1i64..50,
        slide in 1i64..50,
    ) {
        let tuples = sorted(&raw);
        let mut op = WindowOperator::new(Sum, OperatorConfig::in_order());
        op.add_query(Box::new(SlidingWindow::new(length, slide))).unwrap();
        let mut out = Vec::new();
        for &(ts, v) in &tuples {
            op.process_tuple(ts, v, &mut out);
        }
        let slices: Vec<Range> = op.store().slices().map(|s| s.range()).collect();
        for w in slices.windows(2) {
            prop_assert!(w[0].end <= w[1].start, "slices out of order: {} then {}", w[0], w[1]);
        }
        // Live slices bounded: window extent / slide + a small constant.
        let bound = (length / slide + 4) as usize * 2 + 4;
        prop_assert!(slices.len() <= bound, "{} slices > bound {}", slices.len(), bound);
    }
}
