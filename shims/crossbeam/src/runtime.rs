//! The workspace's single concurrency surface: bounded channels plus
//! scoped threads, in two flavors.
//!
//! Production code constructs **all** of its concurrency here (the
//! `raw-channel` lint forbids raw `mpsc`/`thread::spawn`/
//! `thread::scope` elsewhere):
//!
//! * **Native** (default): [`bounded`] is `mpsc::sync_channel`,
//!   [`scope`] is `std::thread::scope`, [`probe`] is a no-op. The only
//!   cost over calling std directly is one enum-variant branch per
//!   channel operation and one thread-local read at
//!   channel/scope/probe construction.
//! * **Scheduled**: inside [`crate::sched::run_controlled`] the same
//!   calls produce cooperatively scheduled tasks and channels whose
//!   every operation yields to a deterministic
//!   [`Strategy`](crate::sched::Strategy), and [`probe`] records
//!   oracle events. The protocol code cannot tell the difference —
//!   which is the point: `cargo sched` explores the *real*
//!   implementation.

use std::cell::RefCell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::Arc;

use crate::channel;
use crate::sched::{self, ProbeEvent, Sched, TaskId};

pub use crate::channel::{Receiver, RecvError, SendError, Sender, TryRecvError, TrySendError};

/// Creates a bounded channel of the ambient flavor: native `mpsc` on a
/// plain thread, a scheduler-controlled queue inside a controlled run.
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    match sched::current() {
        None => channel::bounded(cap),
        Some((sc, _)) => {
            let (tx, rx) = sched::sched_bounded(&sc, cap);
            (Sender(channel::SenderRepr::Sched(tx)), Receiver(channel::ReceiverRepr::Sched(rx)))
        }
    }
}

/// Records an instrumentation event for the sched oracle. A no-op (one
/// thread-local read) outside a controlled run; protocol hot paths call
/// it at most once per message, never per tuple.
pub fn probe(event: ProbeEvent) {
    if let Some((sc, me)) = sched::current() {
        sc.record_probe(me, event);
    }
}

/// A scoped-spawn environment wrapping [`std::thread::scope`]. Spawned
/// closures may borrow from the enclosing scope exactly as with std.
pub struct Scope<'scope, 'env: 'scope> {
    std: &'scope std::thread::Scope<'scope, 'env>,
    sc: Option<Arc<Sched>>,
    spawned: RefCell<Vec<TaskId>>,
}

/// Handle to a scoped thread/task; [`join`](JoinHandle::join) returns
/// the closure's result or its panic payload, as with std.
pub struct JoinHandle<'scope, T> {
    inner: std::thread::ScopedJoinHandle<'scope, T>,
    task: Option<(Arc<Sched>, TaskId)>,
}

impl<T> JoinHandle<'_, T> {
    pub fn join(self) -> std::thread::Result<T> {
        if let Some((sc, target)) = &self.task {
            if let Some((_, me)) = sched::current() {
                sc.join_task(me, *target);
            }
        }
        self.inner.join()
    }
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a thread (native) or a scheduled task (controlled run).
    /// Task ids follow spawn order, so a deterministic driver yields a
    /// deterministic task numbering.
    pub fn spawn<F, T>(&self, f: F) -> JoinHandle<'scope, T>
    where
        F: FnOnce() -> T + Send + 'scope,
        T: Send + 'scope,
    {
        match &self.sc {
            None => JoinHandle { inner: self.std.spawn(f), task: None },
            Some(sc) => {
                let id = sc.register_task();
                self.spawned.borrow_mut().push(id);
                let sc2 = sc.clone();
                let inner = self.std.spawn(move || {
                    sc2.enter_task(id);
                    match catch_unwind(AssertUnwindSafe(f)) {
                        Ok(v) => {
                            sc2.finish_task(id, None);
                            v
                        }
                        Err(p) => {
                            sc2.finish_task(id, Some(sched::panic_message(&*p)));
                            resume_unwind(p)
                        }
                    }
                });
                JoinHandle { inner, task: Some((sc.clone(), id)) }
            }
        }
    }
}

/// Creates a scope for spawning scoped threads/tasks; all of them are
/// joined (at both the scheduler and OS level) before `scope` returns,
/// exactly like [`std::thread::scope`].
pub fn scope<'env, F, R>(f: F) -> R
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    let ctx = sched::current();
    std::thread::scope(move |s| {
        let wrapper = Scope {
            std: s,
            sc: ctx.as_ref().map(|(sc, _)| sc.clone()),
            spawned: RefCell::new(Vec::new()),
        };
        match ctx {
            None => f(&wrapper),
            Some((sc, me)) => {
                // Catch a panicking scope body *before* std's implicit
                // OS-level joins: recording the failure releases every
                // task still parked on the virtual scheduler so those
                // joins terminate.
                let out = catch_unwind(AssertUnwindSafe(|| f(&wrapper)));
                match out {
                    Ok(v) => {
                        // Scheduler-level counterpart of std's implicit
                        // join: tasks not explicitly joined must finish
                        // before the OS join would block the token.
                        let ids = wrapper.spawned.borrow().clone();
                        for id in ids {
                            sc.join_task(me, id);
                        }
                        v
                    }
                    Err(p) => {
                        sc.fail_run(sched::panic_message(&*p));
                        resume_unwind(p)
                    }
                }
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::{run_controlled, Strategy};

    /// Always continues the current task; first runnable otherwise.
    struct Baseline;
    impl Strategy for Baseline {
        fn pick(&mut self, runnable: &[TaskId], current: Option<TaskId>) -> TaskId {
            current.unwrap_or(runnable[0])
        }
    }

    /// Always picks the highest task id (maximally adversarial to
    /// spawn order).
    struct PreferLast;
    impl Strategy for PreferLast {
        fn pick(&mut self, runnable: &[TaskId], _current: Option<TaskId>) -> TaskId {
            *runnable.last().unwrap()
        }
    }

    fn pingpong(n: i32) -> i32 {
        scope(|s| {
            let (tx, rx) = bounded::<i32>(2);
            let h = s.spawn(move || rx.iter().sum::<i32>());
            for i in 0..n {
                tx.send(i).unwrap();
            }
            drop(tx);
            h.join().unwrap()
        })
    }

    #[test]
    fn controlled_run_matches_native() {
        let native = pingpong(5);
        let run = run_controlled(Box::new(Baseline), || pingpong(5));
        assert_eq!(run.result.as_ref().copied().unwrap(), native);
        assert!(run.yields > 0, "channel ops must hit yield points");
        let run2 = run_controlled(Box::new(PreferLast), || pingpong(5));
        assert_eq!(run2.result.unwrap(), native, "result is schedule-independent");
    }

    #[test]
    fn identical_strategies_replay_identical_branches() {
        let a = run_controlled(Box::new(PreferLast), || pingpong(4));
        let b = run_controlled(Box::new(PreferLast), || pingpong(4));
        assert_eq!(a.branches, b.branches, "same strategy, same schedule");
        assert_eq!(a.yields, b.yields);
    }

    #[test]
    fn task_panic_is_reported_not_hung() {
        let run = run_controlled(Box::new(Baseline), || {
            scope(|s| {
                let (tx, rx) = bounded::<i32>(1);
                let h = s.spawn(move || {
                    let _ = rx.recv();
                    panic!("worker exploded");
                });
                tx.send(1).unwrap();
                // The panic tears the run down; join surfaces it.
                let _ = h.join();
            })
        });
        let err = run.result.expect_err("panic must fail the run");
        assert!(err.contains("worker exploded"), "got: {err}");
    }

    #[test]
    fn deadlock_is_detected() {
        let run = run_controlled(Box::new(Baseline), || {
            scope(|s| {
                // Two tasks each waiting on a channel nobody sends to,
                // while the root joins them: everyone blocks.
                let (_tx1, rx1) = bounded::<i32>(1);
                let (_tx2, rx2) = bounded::<i32>(1);
                let a = s.spawn(move || rx1.recv());
                let b = s.spawn(move || rx2.recv());
                let _ = a.join();
                let _ = b.join();
            })
        });
        let err = run.result.expect_err("deadlock must fail the run");
        assert!(err.contains("deadlock"), "got: {err}");
    }

    #[test]
    fn probes_record_in_execution_order() {
        let run = run_controlled(Box::new(Baseline), || {
            probe(ProbeEvent::Shipped { src: 3, items: 7 });
            probe(ProbeEvent::Barrier { wm: 10, acks: 2 });
        });
        assert!(run.result.is_ok());
        let events: Vec<_> = run.probes.iter().map(|p| p.event).collect();
        assert_eq!(
            events,
            vec![ProbeEvent::Shipped { src: 3, items: 7 }, ProbeEvent::Barrier { wm: 10, acks: 2 }]
        );
    }

    #[test]
    fn probe_is_noop_outside_controlled_runs() {
        probe(ProbeEvent::Released { items: 1 });
    }

    #[test]
    fn backpressure_blocks_and_resumes_under_sched() {
        // Capacity 1 forces the sender to park; the receiver must wake
        // it and the run must still drain everything.
        let run = run_controlled(Box::new(PreferLast), || {
            scope(|s| {
                let (tx, rx) = bounded::<usize>(1);
                let h = s.spawn(move || rx.iter().collect::<Vec<_>>());
                for i in 0..6 {
                    tx.send(i).unwrap();
                }
                drop(tx);
                h.join().unwrap()
            })
        });
        assert_eq!(run.result.unwrap(), (0..6).collect::<Vec<_>>());
    }

    #[test]
    fn try_send_and_try_iter_under_sched() {
        let run = run_controlled(Box::new(Baseline), || {
            scope(|s| {
                let (tx, rx) = bounded::<i32>(2);
                assert!(tx.try_send(1).is_ok());
                assert!(tx.try_send(2).is_ok());
                assert!(tx.try_send(3).unwrap_err().is_full());
                let h = s.spawn(move || {
                    let first = rx.recv().unwrap();
                    let rest: Vec<i32> = rx.try_iter().collect();
                    (first, rest)
                });
                let (first, rest) = h.join().unwrap();
                assert_eq!(first, 1);
                assert_eq!(rest, vec![2]);
                drop(tx);
            })
        });
        assert!(run.result.is_ok());
    }
}
