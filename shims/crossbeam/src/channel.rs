//! Bounded multi-producer single-consumer channels in two flavors.
//!
//! [`Sender`]/[`Receiver`] are thin enums over a native
//! `std::sync::mpsc::sync_channel` pair (the default — one predictable
//! branch per operation, no locks beyond mpsc's own) and a
//! scheduler-controlled queue (built only by [`crate::runtime::bounded`]
//! inside [`crate::sched::run_controlled`], where every operation is a
//! deterministic yield point). The two flavors have identical blocking,
//! capacity, and disconnect semantics.

use std::sync::mpsc;

use crate::sched;

/// Error returned when the receiving side has hung up.
#[derive(PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> std::fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SendError(..)")
    }
}

impl<T> std::fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "sending on a disconnected channel")
    }
}

/// Error returned when the sending side has hung up.
#[derive(Debug, PartialEq, Eq)]
pub struct RecvError;

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// Nothing queued right now; senders are still alive.
    Empty,
    /// Nothing queued and every sender has hung up.
    Disconnected,
}

/// Error returned by [`Sender::try_send`]: the value comes back so the
/// caller can retry (e.g. with a blocking [`Sender::send`]).
#[derive(PartialEq, Eq)]
pub enum TrySendError<T> {
    /// The channel is at capacity.
    Full(T),
    /// The receiving side has hung up.
    Disconnected(T),
}

impl<T> TrySendError<T> {
    /// Recovers the value that could not be sent.
    pub fn into_inner(self) -> T {
        match self {
            TrySendError::Full(v) | TrySendError::Disconnected(v) => v,
        }
    }

    pub fn is_full(&self) -> bool {
        matches!(self, TrySendError::Full(_))
    }

    pub fn is_disconnected(&self) -> bool {
        matches!(self, TrySendError::Disconnected(_))
    }
}

impl<T> std::fmt::Debug for TrySendError<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrySendError::Full(_) => write!(f, "Full(..)"),
            TrySendError::Disconnected(_) => write!(f, "Disconnected(..)"),
        }
    }
}

impl<T> std::fmt::Display for TrySendError<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrySendError::Full(_) => write!(f, "sending on a full channel"),
            TrySendError::Disconnected(_) => write!(f, "sending on a disconnected channel"),
        }
    }
}

pub(crate) enum SenderRepr<T> {
    Native(mpsc::SyncSender<T>),
    Sched(sched::SchedSender<T>),
}

/// Sending half of a bounded channel; cloneable for fan-in.
pub struct Sender<T>(pub(crate) SenderRepr<T>);

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        match &self.0 {
            SenderRepr::Native(tx) => Sender(SenderRepr::Native(tx.clone())),
            SenderRepr::Sched(tx) => Sender(SenderRepr::Sched(tx.clone())),
        }
    }
}

impl<T> Sender<T> {
    /// Blocks while the channel is at capacity (backpressure).
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        match &self.0 {
            SenderRepr::Native(tx) => tx.send(value).map_err(|mpsc::SendError(v)| SendError(v)),
            SenderRepr::Sched(tx) => tx.send(value).map_err(SendError),
        }
    }

    /// Non-blocking send: fails immediately with [`TrySendError::Full`]
    /// when the channel is at capacity instead of waiting for space.
    /// Lets producers detect backpressure (and measure the queue wait
    /// of the blocking fallback).
    pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
        match &self.0 {
            SenderRepr::Native(tx) => tx.try_send(value).map_err(|e| match e {
                mpsc::TrySendError::Full(v) => TrySendError::Full(v),
                mpsc::TrySendError::Disconnected(v) => TrySendError::Disconnected(v),
            }),
            SenderRepr::Sched(tx) => tx.try_send(value),
        }
    }
}

pub(crate) enum ReceiverRepr<T> {
    Native(mpsc::Receiver<T>),
    Sched(sched::SchedReceiver<T>),
}

/// Receiving half of a bounded channel.
pub struct Receiver<T>(pub(crate) ReceiverRepr<T>);

impl<T> Receiver<T> {
    pub fn recv(&self) -> Result<T, RecvError> {
        match &self.0 {
            ReceiverRepr::Native(rx) => rx.recv().map_err(|_| RecvError),
            ReceiverRepr::Sched(rx) => rx.recv().map_err(|()| RecvError),
        }
    }

    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        match &self.0 {
            ReceiverRepr::Native(rx) => rx.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            }),
            ReceiverRepr::Sched(rx) => rx.try_recv(),
        }
    }

    /// Blocking iterator that ends when all senders are dropped.
    pub fn iter(&self) -> Iter<'_, T> {
        Iter(self)
    }

    /// Non-blocking iterator: yields every message already queued and
    /// stops at the first would-block, without waiting. Consumers use
    /// it to drain a burst after one blocking `recv` instead of
    /// busy-polling `try_recv`. Under the sched runtime the drain is a
    /// single yield point (the whole burst is one atomic step), matching
    /// the native behavior of observing one queue snapshot.
    pub fn try_iter(&self) -> TryIter<'_, T> {
        match &self.0 {
            ReceiverRepr::Native(rx) => TryIter(TryIterRepr::Native(rx.try_iter())),
            ReceiverRepr::Sched(rx) => TryIter(TryIterRepr::Sched(rx.drain().into_iter())),
        }
    }
}

/// Blocking iterator over received messages (see [`Receiver::iter`]).
pub struct Iter<'a, T>(&'a Receiver<T>);

impl<T> Iterator for Iter<'_, T> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        self.0.recv().ok()
    }
}

enum TryIterRepr<'a, T> {
    Native(mpsc::TryIter<'a, T>),
    Sched(std::collections::vec_deque::IntoIter<T>),
}

/// Non-blocking iterator over queued messages (see
/// [`Receiver::try_iter`]).
pub struct TryIter<'a, T>(TryIterRepr<'a, T>);

impl<T> Iterator for TryIter<'_, T> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        match &mut self.0 {
            TryIterRepr::Native(it) => it.next(),
            TryIterRepr::Sched(it) => it.next(),
        }
    }
}

/// Owning blocking iterator; ends when all senders are dropped.
pub struct IntoIter<T>(Receiver<T>);

impl<T> Iterator for IntoIter<T> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        self.0.recv().ok()
    }
}

impl<T> IntoIterator for Receiver<T> {
    type Item = T;
    type IntoIter = IntoIter<T>;

    fn into_iter(self) -> Self::IntoIter {
        IntoIter(self)
    }
}

/// Creates a native bounded channel with the given capacity. A capacity
/// of 0 makes every send rendezvous with a receive.
///
/// Production code should construct channels through
/// [`crate::runtime::bounded`] instead, which picks the flavor from the
/// ambient runtime (the `raw-channel` lint enforces this).
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    let (tx, rx) = mpsc::sync_channel(cap);
    (Sender(SenderRepr::Native(tx)), Receiver(ReceiverRepr::Native(rx)))
}
