//! Offline stand-in for the `crossbeam` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the subset it uses: `channel::bounded` with cloneable senders
//! and an iterating receiver. Backed by `std::sync::mpsc::sync_channel`,
//! which provides the same bounded-capacity backpressure semantics.

pub mod channel {
    use std::sync::mpsc;

    /// Error returned when the receiving side has hung up.
    #[derive(PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "SendError(..)")
        }
    }

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error returned when the sending side has hung up.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Sender::try_send`]: the value comes back so the
    /// caller can retry (e.g. with a blocking [`Sender::send`]).
    #[derive(PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The channel is at capacity.
        Full(T),
        /// The receiving side has hung up.
        Disconnected(T),
    }

    impl<T> TrySendError<T> {
        /// Recovers the value that could not be sent.
        pub fn into_inner(self) -> T {
            match self {
                TrySendError::Full(v) | TrySendError::Disconnected(v) => v,
            }
        }

        pub fn is_full(&self) -> bool {
            matches!(self, TrySendError::Full(_))
        }

        pub fn is_disconnected(&self) -> bool {
            matches!(self, TrySendError::Disconnected(_))
        }
    }

    impl<T> std::fmt::Debug for TrySendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TrySendError::Full(_) => write!(f, "Full(..)"),
                TrySendError::Disconnected(_) => write!(f, "Disconnected(..)"),
            }
        }
    }

    impl<T> std::fmt::Display for TrySendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TrySendError::Full(_) => write!(f, "sending on a full channel"),
                TrySendError::Disconnected(_) => write!(f, "sending on a disconnected channel"),
            }
        }
    }

    /// Sending half of a bounded channel; cloneable for fan-in.
    pub struct Sender<T>(mpsc::SyncSender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Blocks while the channel is at capacity (backpressure).
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value).map_err(|mpsc::SendError(v)| SendError(v))
        }

        /// Non-blocking send: fails immediately with [`TrySendError::Full`]
        /// when the channel is at capacity instead of waiting for space.
        /// Lets producers detect backpressure (and measure the queue wait
        /// of the blocking fallback).
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            self.0.try_send(value).map_err(|e| match e {
                mpsc::TrySendError::Full(v) => TrySendError::Full(v),
                mpsc::TrySendError::Disconnected(v) => TrySendError::Disconnected(v),
            })
        }
    }

    /// Receiving half of a bounded channel.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv().map_err(|_| RecvError)
        }

        pub fn try_recv(&self) -> Result<T, mpsc::TryRecvError> {
            self.0.try_recv()
        }

        /// Blocking iterator that ends when all senders are dropped.
        pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
            self.0.iter()
        }

        /// Non-blocking iterator: yields every message already queued and
        /// stops at the first would-block, without waiting. Consumers use
        /// it to drain a burst after one blocking `recv` instead of
        /// busy-polling `try_recv`.
        pub fn try_iter(&self) -> impl Iterator<Item = T> + '_ {
            self.0.try_iter()
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = mpsc::IntoIter<T>;

        fn into_iter(self) -> Self::IntoIter {
            self.0.into_iter()
        }
    }

    /// Creates a bounded channel with the given capacity. A capacity of 0
    /// makes every send rendezvous with a receive.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender(tx), Receiver(rx))
    }
}

#[cfg(test)]
mod tests {
    use super::channel::bounded;

    #[test]
    fn send_recv_iter() {
        let (tx, rx) = bounded(4);
        let t = std::thread::spawn(move || {
            for i in 0..10 {
                tx.send(i).unwrap();
            }
        });
        let got: Vec<i32> = rx.iter().collect();
        t.join().unwrap();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn send_fails_after_receiver_drop() {
        let (tx, rx) = bounded::<i32>(1);
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn try_send_reports_full_and_disconnected() {
        use super::channel::TrySendError;
        let (tx, rx) = bounded::<i32>(2);
        assert!(tx.try_send(1).is_ok());
        assert!(tx.try_send(2).is_ok());
        // At capacity: the value comes back without blocking.
        match tx.try_send(3) {
            Err(e) if e.is_full() => assert_eq!(e.into_inner(), 3),
            other => panic!("expected Full, got {other:?}"),
        }
        assert_eq!(rx.try_recv(), Ok(1));
        assert!(tx.try_send(3).is_ok(), "space freed by recv");
        drop(rx);
        match tx.try_send(4) {
            Err(TrySendError::Disconnected(v)) => assert_eq!(v, 4),
            other => panic!("expected Disconnected, got {other:?}"),
        }
    }

    #[test]
    fn try_iter_drains_without_blocking() {
        let (tx, rx) = bounded(8);
        assert_eq!(rx.try_iter().count(), 0, "empty channel yields nothing");
        for i in 0..5 {
            tx.send(i).unwrap();
        }
        // Drains exactly what is queued, then returns instead of blocking
        // even though a sender is still alive.
        let got: Vec<i32> = rx.try_iter().collect();
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
        assert_eq!(rx.try_iter().count(), 0);
        tx.send(9).unwrap();
        assert_eq!(rx.try_iter().collect::<Vec<_>>(), vec![9]);
    }

    #[test]
    fn clone_senders_fan_in() {
        let (tx, rx) = bounded(8);
        let tx2 = tx.clone();
        tx.send(1).unwrap();
        tx2.send(2).unwrap();
        drop((tx, tx2));
        let mut got: Vec<i32> = rx.iter().collect();
        got.sort_unstable();
        assert_eq!(got, vec![1, 2]);
    }
}
