//! Offline stand-in for the `crossbeam` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the subset it uses: `channel::bounded` with cloneable senders
//! and an iterating receiver. Backed by `std::sync::mpsc::sync_channel`,
//! which provides the same bounded-capacity backpressure semantics.

pub mod channel {
    use std::sync::mpsc;

    /// Error returned when the receiving side has hung up.
    #[derive(PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "SendError(..)")
        }
    }

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error returned when the sending side has hung up.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Sending half of a bounded channel; cloneable for fan-in.
    pub struct Sender<T>(mpsc::SyncSender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Blocks while the channel is at capacity (backpressure).
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value).map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    /// Receiving half of a bounded channel.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv().map_err(|_| RecvError)
        }

        pub fn try_recv(&self) -> Result<T, mpsc::TryRecvError> {
            self.0.try_recv()
        }

        /// Blocking iterator that ends when all senders are dropped.
        pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
            self.0.iter()
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = mpsc::IntoIter<T>;

        fn into_iter(self) -> Self::IntoIter {
            self.0.into_iter()
        }
    }

    /// Creates a bounded channel with the given capacity. A capacity of 0
    /// makes every send rendezvous with a receive.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender(tx), Receiver(rx))
    }
}

#[cfg(test)]
mod tests {
    use super::channel::bounded;

    #[test]
    fn send_recv_iter() {
        let (tx, rx) = bounded(4);
        let t = std::thread::spawn(move || {
            for i in 0..10 {
                tx.send(i).unwrap();
            }
        });
        let got: Vec<i32> = rx.iter().collect();
        t.join().unwrap();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn send_fails_after_receiver_drop() {
        let (tx, rx) = bounded::<i32>(1);
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn clone_senders_fan_in() {
        let (tx, rx) = bounded(8);
        let tx2 = tx.clone();
        tx.send(1).unwrap();
        tx2.send(2).unwrap();
        drop((tx, tx2));
        let mut got: Vec<i32> = rx.iter().collect();
        got.sort_unstable();
        assert_eq!(got, vec![1, 2]);
    }
}
