//! Offline stand-in for the `crossbeam` crate, plus the schedulable
//! concurrency runtime used by `cargo sched`.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the subset it uses: `channel::bounded` with cloneable senders
//! and an iterating receiver, natively backed by
//! `std::sync::mpsc::sync_channel` (same bounded-capacity backpressure
//! semantics).
//!
//! On top of that, [`runtime`] is the single construction surface for
//! all concurrency in the workspace: `runtime::bounded` +
//! `runtime::scope` behave exactly like the native channel/thread pair
//! in normal builds, but inside [`sched::run_controlled`] they produce
//! cooperatively scheduled tasks whose every channel operation is a
//! yield point for a deterministic [`sched::Strategy`]. That is what
//! lets `gss-analysis` explore real interleavings of the stream
//! protocols instead of trusting a hand-written model.

pub mod channel;
pub mod runtime;
pub mod sched;

#[cfg(test)]
mod tests {
    use super::channel::bounded;

    #[test]
    fn send_recv_iter() {
        let (tx, rx) = bounded(4);
        let t = std::thread::spawn(move || {
            for i in 0..10 {
                tx.send(i).unwrap();
            }
        });
        let got: Vec<i32> = rx.iter().collect();
        t.join().unwrap();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn send_fails_after_receiver_drop() {
        let (tx, rx) = bounded::<i32>(1);
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn try_send_reports_full_and_disconnected() {
        use super::channel::TrySendError;
        let (tx, rx) = bounded::<i32>(2);
        assert!(tx.try_send(1).is_ok());
        assert!(tx.try_send(2).is_ok());
        // At capacity: the value comes back without blocking.
        match tx.try_send(3) {
            Err(e) if e.is_full() => assert_eq!(e.into_inner(), 3),
            other => panic!("expected Full, got {other:?}"),
        }
        assert_eq!(rx.try_recv(), Ok(1));
        assert!(tx.try_send(3).is_ok(), "space freed by recv");
        drop(rx);
        match tx.try_send(4) {
            Err(TrySendError::Disconnected(v)) => assert_eq!(v, 4),
            other => panic!("expected Disconnected, got {other:?}"),
        }
    }

    #[test]
    fn try_iter_drains_without_blocking() {
        let (tx, rx) = bounded(8);
        assert_eq!(rx.try_iter().count(), 0, "empty channel yields nothing");
        for i in 0..5 {
            tx.send(i).unwrap();
        }
        // Drains exactly what is queued, then returns instead of blocking
        // even though a sender is still alive.
        let got: Vec<i32> = rx.try_iter().collect();
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
        assert_eq!(rx.try_iter().count(), 0);
        tx.send(9).unwrap();
        assert_eq!(rx.try_iter().collect::<Vec<_>>(), vec![9]);
    }

    #[test]
    fn clone_senders_fan_in() {
        let (tx, rx) = bounded(8);
        let tx2 = tx.clone();
        tx.send(1).unwrap();
        tx2.send(2).unwrap();
        drop((tx, tx2));
        let mut got: Vec<i32> = rx.iter().collect();
        got.sort_unstable();
        assert_eq!(got, vec![1, 2]);
    }
}
