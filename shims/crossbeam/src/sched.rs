//! A deterministic, token-passing cooperative scheduler for exploring
//! interleavings of the real protocol code.
//!
//! Inside [`run_controlled`] every task created by
//! [`crate::runtime::scope`] runs on its own OS thread, but exactly one
//! task — the token holder — makes progress at a time. Every channel
//! operation ([`crate::runtime::bounded`] endpoints) is a *yield point*:
//! the running task offers the token back, and a [`Strategy`] picks
//! which runnable task continues. Between two yield points a task
//! executes deterministic, single-threaded Rust, so the entire
//! execution is a pure function of the strategy's choice sequence —
//! replaying the same choices replays the same run, which is what lets
//! `gss-analysis` enumerate schedules (DFS) or sample them (PCT) and
//! check invariants on each one.
//!
//! ## Blocking, teardown, and failure
//!
//! A task that would block (send on a full channel, recv on an empty
//! one, join on a live task) parks itself on the relevant wait list and
//! hands the token to another runnable task; the waker marks it
//! runnable again. If no task is runnable and at least one is blocked,
//! the run **deadlocked** — that is recorded as a failure. On any
//! failure (deadlock or a task panic) the token discipline switches
//! off: every parked task wakes, every subsequent channel operation
//! reports disconnection, and the protocol code's own "peer hung up"
//! panics tear the remaining tasks down so the OS threads join
//! promptly. The *first* recorded failure is the verdict for the run.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

use crate::channel::{TryRecvError, TrySendError};

/// Dense task identifier; task 0 is the root (the closure passed to
/// [`run_controlled`]), later ids follow spawn order, which is
/// deterministic for a deterministic root.
pub type TaskId = usize;

/// Instrumentation event recorded by protocol code through
/// [`crate::runtime::probe`]. Free (a no-op) outside the scheduler;
/// inside, events accumulate in execution order for the oracle.
///
/// `src` is a protocol-level producer index (worker or shard number),
/// not a [`TaskId`], so ship and apply sites can be matched without
/// knowing spawn order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProbeEvent {
    /// A producer shipped a batch (partials or emissions) downstream.
    Shipped { src: usize, items: u64 },
    /// The merge stage consumed a batch originating at `src`.
    Applied { src: usize, items: u64 },
    /// The merge stage consumed a watermark ack from `src`.
    AckSeen { src: usize, wm: i64 },
    /// The merge stage closed an epoch at `wm` having seen `acks` acks.
    Barrier { wm: i64, acks: u64 },
    /// The merge stage released `items` staged emissions downstream.
    Released { items: u64 },
}

/// A probe event plus the task that recorded it.
#[derive(Clone, Copy, Debug)]
pub struct Probe {
    pub task: TaskId,
    pub event: ProbeEvent,
}

/// One recorded scheduling decision with more than one possible
/// outcome. Single-choice points are not recorded (and not offered to
/// the strategy): the choice sequence over these branches identifies
/// the schedule.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Branch {
    /// Runnable tasks at the decision point, sorted ascending; always
    /// at least two.
    pub runnable: Vec<TaskId>,
    /// The task that held the token, if it is itself still runnable
    /// (picking anything else is a preemption).
    pub current: Option<TaskId>,
    /// The strategy's choice.
    pub picked: TaskId,
}

/// Schedule policy: picks the next task at every multi-choice yield
/// point. Implementations live in `gss-analysis` (replaying DFS, PCT);
/// the scheduler core only guarantees it calls `pick` deterministically
/// given a deterministic workload.
pub trait Strategy: Send {
    /// `runnable` is sorted ascending and has at least two entries;
    /// `current` is the token holder if still runnable. Must return a
    /// member of `runnable`.
    fn pick(&mut self, runnable: &[TaskId], current: Option<TaskId>) -> TaskId;
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum TaskState {
    Runnable,
    Blocked,
    Finished,
}

/// Control state of one channel. The typed payload queue lives with the
/// endpoints ([`SchedSender`]/[`SchedReceiver`]); `len` mirrors its
/// length and both are only touched under the core lock, in that order.
struct ChanCtl {
    len: usize,
    cap: usize,
    senders: usize,
    rx_alive: bool,
    wait_send: Vec<TaskId>,
    wait_recv: Vec<TaskId>,
}

struct Core {
    strategy: Box<dyn Strategy>,
    tasks: Vec<TaskState>,
    current: TaskId,
    chans: Vec<ChanCtl>,
    /// Per task: tasks blocked joining it.
    join_wait: Vec<Vec<TaskId>>,
    probes: Vec<Probe>,
    branches: Vec<Branch>,
    yields: u64,
    failed: bool,
    failure: Option<String>,
}

impl Core {
    fn fail(&mut self, msg: String) {
        if !self.failed {
            self.failed = true;
            self.failure = Some(msg);
        }
    }

    fn wake_all(&mut self, waiters: Vec<TaskId>) {
        for t in waiters {
            if self.tasks[t] == TaskState::Blocked {
                self.tasks[t] = TaskState::Runnable;
            }
        }
    }

    /// Hands the token to the next runnable task (recording the branch
    /// when there is a real choice). With nothing runnable the run is
    /// either complete or deadlocked.
    fn reschedule(&mut self) {
        let runnable: Vec<TaskId> = self
            .tasks
            .iter()
            .enumerate()
            .filter(|(_, s)| **s == TaskState::Runnable)
            .map(|(i, _)| i)
            .collect();
        match runnable.len() {
            0 => {
                if self.tasks.contains(&TaskState::Blocked) {
                    self.fail("deadlock: every live task is blocked".to_string());
                }
            }
            1 => self.current = runnable[0],
            _ => {
                let current =
                    (self.tasks[self.current] == TaskState::Runnable).then_some(self.current);
                let picked = self.strategy.pick(&runnable, current);
                if !runnable.contains(&picked) {
                    self.fail(format!("strategy picked non-runnable task {picked}"));
                    return;
                }
                self.branches.push(Branch { runnable, current, picked });
                self.current = picked;
            }
        }
    }
}

/// The scheduler shared by every task of one controlled run.
pub struct Sched {
    core: Mutex<Core>,
    cv: Condvar,
}

thread_local! {
    static CTX: RefCell<Option<(Arc<Sched>, TaskId)>> = const { RefCell::new(None) };
}

/// The ambient scheduler context of the calling thread, if the thread
/// is a task of a controlled run.
pub(crate) fn current() -> Option<(Arc<Sched>, TaskId)> {
    CTX.with(|c| c.borrow().clone())
}

fn set_ctx(v: Option<(Arc<Sched>, TaskId)>) {
    CTX.with(|c| *c.borrow_mut() = v);
}

fn task_id() -> TaskId {
    CTX.with(|c| c.borrow().as_ref().map(|(_, id)| *id))
        .expect("sched channel endpoint used outside its controlled run")
}

pub(crate) fn panic_message(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "task panicked".to_string()
    }
}

impl Sched {
    fn new(strategy: Box<dyn Strategy>) -> Self {
        Sched {
            core: Mutex::new(Core {
                strategy,
                tasks: vec![TaskState::Runnable],
                current: 0,
                chans: Vec::new(),
                join_wait: vec![Vec::new()],
                probes: Vec::new(),
                branches: Vec::new(),
                yields: 0,
                failed: false,
                failure: None,
            }),
            cv: Condvar::new(),
        }
    }

    fn lock(&self) -> MutexGuard<'_, Core> {
        // A poisoned lock means a task panicked mid-update; teardown
        // still needs the state, so keep going with the inner value.
        self.core.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Blocks until the token returns to `me` (or the run fails).
    fn wait_token(&self, mut core: MutexGuard<'_, Core>, me: TaskId) {
        self.cv.notify_all();
        while core.current != me && !core.failed {
            core = self.cv.wait(core).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// A yield point: offer the token back to the strategy. No-op after
    /// failure (token discipline is off during teardown).
    fn yield_now(&self, me: TaskId) {
        let mut core = self.lock();
        if core.failed {
            return;
        }
        core.yields += 1;
        core.reschedule();
        self.wait_token(core, me);
    }

    /// Parks the calling task — which must already sit on a wait list —
    /// hands the token on, and returns once re-runnable and picked (or
    /// the run failed).
    fn block_self(&self, mut core: MutexGuard<'_, Core>, me: TaskId) {
        core.tasks[me] = TaskState::Blocked;
        core.reschedule();
        self.wait_token(core, me);
    }

    pub(crate) fn register_task(&self) -> TaskId {
        let mut core = self.lock();
        core.tasks.push(TaskState::Runnable);
        core.join_wait.push(Vec::new());
        core.tasks.len() - 1
    }

    /// First thing a spawned task thread does: publish its context and
    /// wait to be scheduled for the first time.
    pub(crate) fn enter_task(self: &Arc<Self>, me: TaskId) {
        set_ctx(Some((self.clone(), me)));
        let core = self.lock();
        self.wait_token(core, me);
    }

    pub(crate) fn finish_task(&self, me: TaskId, panicked: Option<String>) {
        set_ctx(None);
        let mut core = self.lock();
        core.tasks[me] = TaskState::Finished;
        let waiters = std::mem::take(&mut core.join_wait[me]);
        core.wake_all(waiters);
        match panicked {
            Some(msg) => core.fail(format!("task {me} panicked: {msg}")),
            None => {
                if !core.failed {
                    core.reschedule();
                }
            }
        }
        drop(core);
        self.cv.notify_all();
    }

    /// Blocks the calling task until `target` finishes (scheduler-level
    /// join; the caller still performs the OS-level join afterwards).
    pub(crate) fn join_task(&self, me: TaskId, target: TaskId) {
        loop {
            let mut core = self.lock();
            if core.failed || core.tasks[target] == TaskState::Finished {
                return;
            }
            core.join_wait[target].push(me);
            self.block_self(core, me);
        }
    }

    /// Records a failure from outside task teardown (e.g. the root's
    /// scope closure panicking) and releases every parked task.
    pub(crate) fn fail_run(&self, msg: String) {
        let mut core = self.lock();
        core.fail(msg);
        drop(core);
        self.cv.notify_all();
    }

    pub(crate) fn record_probe(&self, task: TaskId, event: ProbeEvent) {
        let mut core = self.lock();
        core.probes.push(Probe { task, event });
    }

    fn register_chan(&self, cap: usize) -> usize {
        let mut core = self.lock();
        core.chans.push(ChanCtl {
            len: 0,
            cap,
            senders: 1,
            rx_alive: true,
            wait_send: Vec::new(),
            wait_recv: Vec::new(),
        });
        core.chans.len() - 1
    }
}

/// Creates a scheduler-flavored bounded channel pair. Capacity 0
/// (rendezvous) is not modeled; the workspace's protocols never use it.
pub(crate) fn sched_bounded<T>(sc: &Arc<Sched>, cap: usize) -> (SchedSender<T>, SchedReceiver<T>) {
    assert!(cap > 0, "rendezvous (capacity-0) channels are not supported under cargo sched");
    let id = sc.register_chan(cap);
    let q = Arc::new(Mutex::new(VecDeque::new()));
    (SchedSender { sc: sc.clone(), id, q: q.clone() }, SchedReceiver { sc: sc.clone(), id, q })
}

fn lock_q<T>(q: &Mutex<VecDeque<T>>) -> MutexGuard<'_, VecDeque<T>> {
    q.lock().unwrap_or_else(|e| e.into_inner())
}

/// Scheduler-flavored sending endpoint (wrapped by
/// [`crate::channel::Sender`]).
pub struct SchedSender<T> {
    sc: Arc<Sched>,
    id: usize,
    q: Arc<Mutex<VecDeque<T>>>,
}

impl<T> Clone for SchedSender<T> {
    fn clone(&self) -> Self {
        let mut core = self.sc.lock();
        core.chans[self.id].senders += 1;
        drop(core);
        SchedSender { sc: self.sc.clone(), id: self.id, q: self.q.clone() }
    }
}

impl<T> Drop for SchedSender<T> {
    fn drop(&mut self) {
        let mut core = self.sc.lock();
        core.chans[self.id].senders -= 1;
        if core.chans[self.id].senders == 0 {
            let waiters = std::mem::take(&mut core.chans[self.id].wait_recv);
            core.wake_all(waiters);
        }
    }
}

impl<T> SchedSender<T> {
    /// Blocking send; `Err` returns the value on disconnect.
    pub(crate) fn send(&self, value: T) -> Result<(), T> {
        let me = task_id();
        self.sc.yield_now(me);
        loop {
            let mut core = self.sc.lock();
            if core.failed || !core.chans[self.id].rx_alive {
                return Err(value);
            }
            let ch = &mut core.chans[self.id];
            if ch.len < ch.cap {
                ch.len += 1;
                let waiters = std::mem::take(&mut ch.wait_recv);
                core.wake_all(waiters);
                lock_q(&self.q).push_back(value);
                return Ok(());
            }
            ch.wait_send.push(me);
            self.sc.block_self(core, me);
        }
    }

    pub(crate) fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
        let me = task_id();
        self.sc.yield_now(me);
        let mut core = self.sc.lock();
        if core.failed || !core.chans[self.id].rx_alive {
            return Err(TrySendError::Disconnected(value));
        }
        let ch = &mut core.chans[self.id];
        if ch.len >= ch.cap {
            return Err(TrySendError::Full(value));
        }
        ch.len += 1;
        let waiters = std::mem::take(&mut ch.wait_recv);
        core.wake_all(waiters);
        lock_q(&self.q).push_back(value);
        Ok(())
    }
}

/// Scheduler-flavored receiving endpoint (wrapped by
/// [`crate::channel::Receiver`]).
pub struct SchedReceiver<T> {
    sc: Arc<Sched>,
    id: usize,
    q: Arc<Mutex<VecDeque<T>>>,
}

impl<T> Drop for SchedReceiver<T> {
    fn drop(&mut self) {
        let mut core = self.sc.lock();
        core.chans[self.id].rx_alive = false;
        let waiters = std::mem::take(&mut core.chans[self.id].wait_send);
        core.wake_all(waiters);
    }
}

impl<T> SchedReceiver<T> {
    pub(crate) fn recv(&self) -> Result<T, ()> {
        let me = task_id();
        self.sc.yield_now(me);
        loop {
            let mut core = self.sc.lock();
            if core.failed {
                return Err(());
            }
            let ch = &mut core.chans[self.id];
            if ch.len > 0 {
                ch.len -= 1;
                let waiters = std::mem::take(&mut ch.wait_send);
                core.wake_all(waiters);
                let v = lock_q(&self.q).pop_front();
                return v.ok_or(());
            }
            if ch.senders == 0 {
                return Err(());
            }
            ch.wait_recv.push(me);
            self.sc.block_self(core, me);
        }
    }

    pub(crate) fn try_recv(&self) -> Result<T, TryRecvError> {
        let me = task_id();
        self.sc.yield_now(me);
        let mut core = self.sc.lock();
        let ch = &mut core.chans[self.id];
        if ch.len > 0 {
            ch.len -= 1;
            let waiters = std::mem::take(&mut ch.wait_send);
            core.wake_all(waiters);
            return lock_q(&self.q).pop_front().ok_or(TryRecvError::Disconnected);
        }
        if core.failed || core.chans[self.id].senders == 0 {
            return Err(TryRecvError::Disconnected);
        }
        Err(TryRecvError::Empty)
    }

    /// Atomically drains everything queued (the sched flavor of
    /// `try_iter`): one yield point, one observed snapshot.
    pub(crate) fn drain(&self) -> VecDeque<T> {
        let me = task_id();
        self.sc.yield_now(me);
        let mut core = self.sc.lock();
        let ch = &mut core.chans[self.id];
        ch.len = 0;
        let waiters = std::mem::take(&mut ch.wait_send);
        core.wake_all(waiters);
        std::mem::take(&mut *lock_q(&self.q))
    }
}

/// Everything observed during one controlled run.
pub struct ControlledRun<R> {
    /// The root closure's return value, or the run's first recorded
    /// failure (panic message, deadlock, oracle-visible scheduler
    /// error).
    pub result: Result<R, String>,
    /// Probe events in execution order.
    pub probes: Vec<Probe>,
    /// Multi-choice scheduling decisions in execution order — the
    /// schedule's identity, and the input to DFS enumeration.
    pub branches: Vec<Branch>,
    /// Total yield points hit (including single-choice ones).
    pub yields: u64,
}

/// Runs `f` as the root task of a controlled, deterministically
/// scheduled execution. Every `runtime::scope`/`runtime::bounded` use
/// inside `f` (on this thread and its spawned tasks) is virtualized;
/// the strategy decides every interleaving. Panics inside `f` or any
/// task are caught and reported as the run's failure.
pub fn run_controlled<R>(strategy: Box<dyn Strategy>, f: impl FnOnce() -> R) -> ControlledRun<R> {
    assert!(current().is_none(), "run_controlled cannot nest");
    let sc = Arc::new(Sched::new(strategy));
    set_ctx(Some((sc.clone(), 0)));
    let out = catch_unwind(AssertUnwindSafe(f));
    set_ctx(None);
    let mut core = sc.lock();
    core.tasks[0] = TaskState::Finished;
    let probes = std::mem::take(&mut core.probes);
    let branches = std::mem::take(&mut core.branches);
    let yields = core.yields;
    let failure = core.failure.take();
    let failed = core.failed;
    drop(core);
    let result = match out {
        Ok(v) if !failed => Ok(v),
        Ok(_) => Err(failure.unwrap_or_else(|| "run failed without a message".to_string())),
        Err(p) => Err(failure.unwrap_or_else(|| panic_message(&*p))),
    };
    ControlledRun { result, probes, branches, yields }
}
