//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small API subset it actually uses: `StdRng`,
//! `SeedableRng::seed_from_u64`, and `Rng::gen_range` over integer ranges.
//! The generator is xoshiro256** seeded via SplitMix64 — high-quality,
//! deterministic, and entirely self-contained. Streams differ from the
//! real `rand` crate's `StdRng` (ChaCha12), which is fine: the workspace
//! only needs reproducible pseudo-random workloads, not bit-compatible
//! ones.

use std::ops::{Range, RangeInclusive};

/// Core entropy source: 64 random bits per call.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding interface (subset: `seed_from_u64` only).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling interface.
pub trait Rng: RngCore {
    /// Uniform sample from a range (`low..high` or `low..=high`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample(self)
    }

    /// A uniformly random value of a primitive type.
    fn gen<T: Standard>(&mut self) -> T {
        T::from_rng(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        (self.next_u64() as f64 / u64::MAX as f64) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Types `Rng::gen` can produce.
pub trait Standard: Sized {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Element types `gen_range` can sample. The blanket `SampleRange` impls
/// below mirror real rand's shape (`Range<T>: SampleRange<T>` for every
/// `T: SampleUniform`), which is what lets integer-literal ranges infer
/// their type from the surrounding expression.
pub trait SampleUniform: Sized {
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_inclusive(lo, hi, rng)
    }
}

macro_rules! impl_sample_uniform {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo < hi, "cannot sample empty range");
                let span = (hi as $u).wrapping_sub(lo as $u);
                lo.wrapping_add(uniform_u64(rng, span as u64) as $t)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as $u).wrapping_sub(lo as $u).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range: any value.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_u64(rng, span as u64) as $t)
            }
        }
    )*};
}
impl_sample_uniform!(
    u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
    i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize
);

/// Uniform value in `[0, span)` by Lemire-style widening multiply with a
/// rejection pass to remove modulo bias.
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    let threshold = span.wrapping_neg() % span;
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (span as u128);
        if (m as u64) >= threshold {
            return (m >> 64) as u64;
        }
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256** seeded via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0i64..1_000_000), b.gen_range(0i64..1_000_000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(-50i64..=50);
            assert!((-50..=50).contains(&v));
            let u = rng.gen_range(0u32..100);
            assert!(u < 100);
            let w = rng.gen_range(3usize..4);
            assert_eq!(w, 3);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<i64> = (0..16).map(|_| a.gen_range(0i64..1_000_000)).collect();
        let vb: Vec<i64> = (0..16).map(|_| b.gen_range(0i64..1_000_000)).collect();
        assert_ne!(va, vb);
    }
}
