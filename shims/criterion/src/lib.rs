//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the API subset its benches use: `Criterion`, benchmark groups,
//! `bench_function`, `iter`/`iter_batched`, `Throughput`, `BatchSize`,
//! and the `criterion_group!`/`criterion_main!` macros. Measurements are
//! simple wall-clock medians over `sample_size` samples — adequate for
//! relative comparisons, with none of criterion's statistical machinery.
//!
//! `--test` (as passed by `cargo bench -- --test` or CI smoke runs) runs
//! every benchmark exactly once without timing loops.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Work-per-iteration declaration used to derive throughput rates.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Batch sizing for `iter_batched` (all variants behave identically here:
/// one setup per measured iteration).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Entry point handed to `criterion_group!` targets.
pub struct Criterion {
    sample_size: usize,
    test_mode: bool,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        let args: Vec<String> = std::env::args().collect();
        let test_mode = args.iter().any(|a| a == "--test");
        // First free-standing argument (not a flag, not a flag value) is
        // the benchmark name filter, like in real criterion.
        let mut filter = None;
        let mut skip_next = true; // skip argv[0]
        for a in &args {
            if skip_next {
                skip_next = false;
                continue;
            }
            if a == "--bench" || a == "--test" || a == "--nocapture" {
                continue;
            }
            if let Some(rest) = a.strip_prefix("--") {
                // Flags with a value (e.g. --sample-size 10).
                skip_next = !rest.contains('=');
                continue;
            }
            filter = Some(a.clone());
            break;
        }
        Criterion { sample_size: 100, test_mode, filter }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), sample_size: None, throughput: None }
    }

    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let sample_size = self.sample_size;
        self.run_one(name.to_string(), sample_size, None, f);
        self
    }

    fn run_one(
        &mut self,
        label: String,
        sample_size: usize,
        throughput: Option<Throughput>,
        mut f: impl FnMut(&mut Bencher),
    ) {
        if let Some(filter) = &self.filter {
            if !label.contains(filter.as_str()) {
                return;
            }
        }
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: if self.test_mode { 1 } else { sample_size },
            test_mode: self.test_mode,
        };
        f(&mut b);
        if self.test_mode {
            println!("test {label} ... ok");
            return;
        }
        b.samples.sort_unstable();
        let median = b.samples.get(b.samples.len() / 2).copied().unwrap_or_default();
        let mean = if b.samples.is_empty() {
            Duration::ZERO
        } else {
            b.samples.iter().sum::<Duration>() / b.samples.len() as u32
        };
        let rate = match throughput {
            Some(Throughput::Elements(n)) if median > Duration::ZERO => {
                format!("  thrpt: {:.3} Melem/s", n as f64 / median.as_secs_f64() / 1e6)
            }
            Some(Throughput::Bytes(n)) if median > Duration::ZERO => {
                format!("  thrpt: {:.3} MiB/s", n as f64 / median.as_secs_f64() / (1 << 20) as f64)
            }
            _ => String::new(),
        };
        println!("{label:<50} time: [median {median:>12.3?}  mean {mean:>12.3?}]{rate}");
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(1));
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function(
        &mut self,
        name: impl std::fmt::Display,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, name);
        let sample_size = self.sample_size.unwrap_or(self.criterion.sample_size);
        let throughput = self.throughput;
        self.criterion.run_one(label, sample_size, throughput, f);
        self
    }

    pub fn finish(self) {}
}

/// Timing loop driver passed to each benchmark closure.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    test_mode: bool,
}

impl Bencher {
    /// Times `routine` once per sample.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        if self.test_mode {
            black_box(routine());
            return;
        }
        // Warm-up, excluded from samples.
        black_box(routine());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    /// Times `routine` on a fresh `setup()` input per sample; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        if self.test_mode {
            black_box(routine(setup()));
            return;
        }
        black_box(routine(setup())); // warm-up
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }
}

/// Bundles benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_iter_collects_samples() {
        let mut c = Criterion { sample_size: 3, test_mode: false, filter: None };
        let mut runs = 0;
        c.bench_function("noop", |b| b.iter(|| runs += 1));
        assert!(runs >= 3);
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion { sample_size: 2, test_mode: true, filter: None };
        let mut g = c.benchmark_group("g");
        g.sample_size(5).throughput(Throughput::Elements(10));
        g.bench_function("f", |b| b.iter_batched(|| 1u64, |x| x + 1, BatchSize::PerIteration));
        g.finish();
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut c = Criterion { sample_size: 1, test_mode: false, filter: Some("zzz".into()) };
        let mut runs = 0;
        c.bench_function("noop", |b| b.iter(|| runs += 1));
        assert_eq!(runs, 0);
    }
}
