//! Test-runner configuration, error type, and the deterministic RNG.

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Failure raised by `prop_assert*` inside a test case.
#[derive(Debug)]
pub struct TestCaseError {
    pub message: String,
}

impl TestCaseError {
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError { message: message.into() }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.message.fmt(f)
    }
}

/// Deterministic generator driving strategies (xoshiro256** seeded via
/// SplitMix64 — independent of the `rand` shim so the crates stay
/// dependency-free).
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng { s: [next(), next(), next(), next()] }
    }

    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, span)` (widening multiply + rejection).
    pub fn below(&mut self, span: u64) -> u64 {
        debug_assert!(span > 0);
        let threshold = span.wrapping_neg() % span;
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (span as u128);
            if (m as u64) >= threshold {
                return (m >> 64) as u64;
            }
        }
    }
}
