//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the subset of proptest it uses: the `proptest!` macro over
//! `arg in strategy` bindings, integer-range and tuple strategies,
//! `prop::collection::vec`, `prop_map`, `prop_oneof!`, `Just`, and the
//! `prop_assert*` macros. Test cases are generated deterministically from
//! a seed derived from the test name; there is **no shrinking** — a
//! failure reports the case index and seed so it can be replayed.

pub mod strategy;
pub mod test_runner;

pub mod collection {
    pub use crate::strategy::vec;
}

pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Mirror of `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Runs the body of one `proptest!`-generated test function.
///
/// Not part of the public proptest API — the expansion target of the
/// vendored `proptest!` macro.
pub fn run_cases(
    test_name: &str,
    cases: u32,
    mut one_case: impl FnMut(&mut test_runner::TestRng) -> Result<(), test_runner::TestCaseError>,
) {
    // Deterministic per-test base seed (FNV-1a over the test name), plus an
    // optional override for replaying a single failing case.
    let mut seed = 0xcbf2_9ce4_8422_2325u64;
    for b in test_name.bytes() {
        seed ^= b as u64;
        seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
    }
    // Like real proptest: PROPTEST_CASES overrides the per-test count
    // (CI uses a reduced count for the slow audit build).
    let cases = std::env::var("PROPTEST_CASES").ok().and_then(|s| s.parse().ok()).unwrap_or(cases);
    let replay: Option<u64> =
        std::env::var("PROPTEST_REPLAY_SEED").ok().and_then(|s| s.parse().ok());
    for case in 0..cases as u64 {
        let case_seed = replay.unwrap_or(seed.wrapping_add(case));
        let mut rng = test_runner::TestRng::new(case_seed);
        if let Err(e) = one_case(&mut rng) {
            panic!(
                "proptest case {case}/{cases} of `{test_name}` failed: {}\n\
                 (replay with PROPTEST_REPLAY_SEED={case_seed})",
                e.message
            );
        }
        if replay.is_some() {
            return;
        }
    }
}

/// The `proptest!` macro: generates one `#[test]` function per entry,
/// running `ProptestConfig::cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            $crate::run_cases(stringify!($name), config.cases, |__proptest_rng| {
                $(let $arg = $crate::strategy::Strategy::generate(&{ $strat }, __proptest_rng);)+
                $body
                Ok(())
            });
        }
    )*};
}

/// `prop_assert!(cond)` / `prop_assert!(cond, "fmt", args...)`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// `prop_assert_eq!(a, b)` / `prop_assert_eq!(a, b, "fmt", args...)`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "assertion failed: {:?} != {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a == b,
            "assertion failed: {:?} != {:?}: {}", a, b, format!($($fmt)+)
        );
    }};
}

/// `prop_assert_ne!(a, b)` / `prop_assert_ne!(a, b, "fmt", args...)`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, "assertion failed: {:?} == {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a != b,
            "assertion failed: {:?} == {:?}: {}", a, b, format!($($fmt)+)
        );
    }};
}

/// `prop_oneof![s1, s2, ...]`: uniform choice among strategies producing
/// the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
