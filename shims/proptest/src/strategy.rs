//! Value-generation strategies (no shrinking).

use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A generator of values for property tests. Object-safe so strategies can
/// be boxed for `prop_oneof!`.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A boxed, type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `strategy.prop_map(f)`.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice among boxed strategies (`prop_oneof!`).
pub struct Union<T>(Vec<BoxedStrategy<T>>);

impl<T> Union<T> {
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union(arms)
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.0.len() as u64) as usize;
        self.0[i].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($s:ident/$idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(S0 / 0);
impl_tuple_strategy!(S0 / 0, S1 / 1);
impl_tuple_strategy!(S0 / 0, S1 / 1, S2 / 2);
impl_tuple_strategy!(S0 / 0, S1 / 1, S2 / 2, S3 / 3);
impl_tuple_strategy!(S0 / 0, S1 / 1, S2 / 2, S3 / 3, S4 / 4);
impl_tuple_strategy!(S0 / 0, S1 / 1, S2 / 2, S3 / 3, S4 / 4, S5 / 5);

/// Length specification for `collection::vec` (from a literal length, an
/// exclusive range, or an inclusive range).
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi_inclusive: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange { lo: r.start, hi_inclusive: r.end - 1 }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange { lo: *r.start(), hi_inclusive: *r.end() }
    }
}

/// `prop::collection::vec(element_strategy, len)`.
pub fn vec<S: Strategy>(element: S, len: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, len: len.into() }
}

pub struct VecStrategy<S> {
    element: S,
    len: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.len.hi_inclusive - self.len.lo + 1) as u64;
        let n = self.len.lo + rng.below(span) as usize;
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}
